// Package lockhold implements the collsellint analyzer that forbids
// holding a mutex across a blocking operation.
//
// The serving stack's tail latency budget assumes critical sections are
// short: internal/cluster's health machine and internal/serve's breaker and
// admission queue all take a mutex on the request path. A blocking call
// made while the mutex is held — a channel send or receive, a select with
// no default, time.Sleep, (*sync.WaitGroup).Wait, a net/http round-trip, a
// dial — turns one slow peer into a pile-up of every goroutine contending
// that lock (exactly the failure mode PR 9's partition chaos scenario
// provokes).
//
// Blocking is interprocedural: a function that performs a blocking
// operation is marked with a "may block" fact, and the fact propagates
// across package boundaries through the go/analysis facts mechanism, so
// calling a helper that (transitively) sleeps is flagged the same as
// sleeping inline. Three constructs do not propagate to the caller:
//
//   - `go f()` — the spawned goroutine blocks, not this frame;
//   - a function literal that is only defined, not invoked (it runs later,
//     usually after the unlock);
//   - receive/send in a _test.go file (tests are out of scope).
//
// A critical section starts at a (*sync.Mutex).Lock / (*sync.RWMutex).Lock
// or RLock call and ends at the matching Unlock/RUnlock on the same
// receiver expression within the same statement list, or at the end of the
// enclosing function when the unlock is deferred. Intentional
// hold-across-block — e.g. a handoff protocol that owns the lock by design
// — is annotated in place with //collsel:lockhold <why>.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"collsel/internal/analysis/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name:      "lockhold",
	Doc:       "forbid blocking operations (channel ops, selects, sleeps, Waits, net/http round-trips) while holding a mutex",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{new(mayBlockFact)},
	Run:       run,
}

var factModFlag string

func init() {
	// Facts propagate only within the module: following "may block" into
	// the standard library reaches runtime internals where every
	// allocation eventually parks on a channel, which would flag all code.
	// Calls that leave the module are classified by the explicit
	// stdBlocking contract list instead.
	Analyzer.Flags.StringVar(&factModFlag, "factmod", "collsel",
		"module path prefix within which may-block facts propagate")
	annotation.RegisterAuditFlag(&Analyzer.Flags)
}

func inFactScope(path string) bool {
	return path == factModFlag || strings.HasPrefix(path, factModFlag+"/")
}

// mayBlockFact marks a function that (transitively) performs a blocking
// operation. It crosses package boundaries via the facts mechanism.
type mayBlockFact struct {
	Reason string // the root blocking construct, for the diagnostic
}

func (*mayBlockFact) AFact()         {}
func (f *mayBlockFact) String() string { return "mayBlock(" + f.Reason + ")" }

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	anns := make(map[*token.File]*annotation.File)
	skip := make(map[*token.File]bool)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if strings.HasSuffix(tf.Name(), "_test.go") {
			skip[tf] = true
			continue
		}
		anns[tf] = annotation.Collect(pass.Fset, f)
	}

	// Phase 1: compute the package-local may-block set to a fixed point,
	// seeded by direct blocking constructs and facts imported from
	// dependencies, then export facts for downstream packages.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var order []*types.Func // deterministic iteration for the fixed point
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		d := n.(*ast.FuncDecl)
		if d.Body == nil || skip[pass.Fset.File(d.Pos())] {
			return
		}
		if fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
			decls[fn] = d
			order = append(order, fn)
		}
	})

	local := make(map[*types.Func]string) // fn -> reason it may block
	mayBlock := func(fn *types.Func) (string, bool) {
		if r, ok := local[fn]; ok {
			return r, true
		}
		if fn.Pkg() == pass.Pkg || !inFactScope(fn.Pkg().Path()) {
			return "", false
		}
		var fact mayBlockFact
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Reason, true
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			if _, done := local[fn]; done {
				continue
			}
			reason := ""
			// Record the root cause, not the call chain: a fact's reason
			// stays "time.Sleep" however many helpers deep the sleep is.
			scanBlocking(pass, decls[fn].Body, mayBlock, func(n ast.Node, desc, root string) {
				if reason == "" {
					reason = root
				}
			})
			if reason != "" {
				local[fn] = reason
				changed = true
			}
		}
	}
	if inFactScope(pass.Pkg.Path()) {
		for _, fn := range order {
			if r, ok := local[fn]; ok {
				pass.ExportObjectFact(fn, &mayBlockFact{Reason: r})
			}
		}
	}

	// Phase 2: find critical sections and flag blocking operations inside.
	ins.Preorder([]ast.Node{(*ast.BlockStmt)(nil), (*ast.CaseClause)(nil), (*ast.CommClause)(nil)}, func(n ast.Node) {
		tf := pass.Fset.File(n.Pos())
		if skip[tf] {
			return
		}
		var stmts []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			stmts = n.List
		case *ast.CaseClause:
			stmts = n.Body
		case *ast.CommClause:
			stmts = n.Body
		}
		checkList(pass, stmts, anns[tf], mayBlock)
	})
	return nil, nil
}

// lockRegion is one open critical section within a statement list.
type lockRegion struct {
	recv   string // receiver expression of the Lock call, e.g. "s.mu"
	unlock string // method name that closes it: Unlock or RUnlock
}

// checkList scans one statement list for Lock()..Unlock() regions and
// reports blocking operations inside them. A region opened by `mu.Lock()`
// ends at the first statement whose subtree contains `mu.Unlock()` (nodes
// of that statement before the unlock are still inside), or at the end of
// the list when the unlock is deferred or absent (the lock is then held for
// the rest of the function).
func checkList(pass *analysis.Pass, stmts []ast.Stmt, ann *annotation.File,
	mayBlock func(*types.Func) (string, bool)) {

	var open []lockRegion
	report := func(region lockRegion) func(ast.Node, string, string) {
		return func(n ast.Node, desc, _ string) {
			if ann.Suppressed(pass, "lockhold", n.Pos(), n.End()) {
				return
			}
			pass.Reportf(n.Pos(),
				"%s held across %s: blocking while holding the mutex stalls every contender; move it outside the critical section (//collsel:lockhold <why> to allow)",
				region.recv, desc)
		}
	}

	for _, stmt := range stmts {
		// A deferred unlock pins the region to the end of the function;
		// everything after it in this list is a critical section.
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if _, name, ok := mutexCall(pass, d.Call); ok && (name == "Unlock" || name == "RUnlock") {
				continue // matching region, if any, stays open to list end
			}
		}

		// Does this statement close any open region?
		if len(open) > 0 {
			var kept []lockRegion
			for _, r := range open {
				if pos, ok := findUnlock(pass, stmt, r); ok {
					// Nodes of this statement before the unlock are still
					// under the lock.
					scanBlockingBefore(pass, stmt, pos, mayBlock, report(r))
				} else {
					kept = append(kept, r)
				}
			}
			for _, r := range kept {
				scanBlocking(pass, stmt, mayBlock, report(r))
			}
			open = kept
		}

		// Does this statement open a region? (`mu.Lock()` as its own
		// statement — the repo's only idiom for taking a lock.)
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if recv, name, ok := mutexCall(pass, call); ok {
					switch name {
					case "Lock":
						open = append(open, lockRegion{recv: recv, unlock: "Unlock"})
					case "RLock":
						open = append(open, lockRegion{recv: recv, unlock: "RUnlock"})
					}
				}
			}
		}
	}
}

// findUnlock reports the position of the call closing region r inside
// stmt's subtree, if any. Uninvoked function literals and go statements are
// not part of this frame's control flow and are skipped.
func findUnlock(pass *analysis.Pass, stmt ast.Stmt, r lockRegion) (token.Pos, bool) {
	pos := token.NoPos
	frameWalk(stmt, func(n ast.Node) {
		if pos.IsValid() {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if recv, name, ok := mutexCall(pass, call); ok && name == r.unlock && recv == r.recv {
			pos = call.Pos()
		}
	})
	return pos, pos.IsValid()
}

// scanBlocking reports every blocking construct in n's subtree that would
// execute in this frame: channel sends/receives, selects without default,
// ranges over channels, and calls to blocking or may-block functions. The
// report callback receives a display description and the root blocking
// primitive (equal for direct ops; for calls, the callee's root cause).
func scanBlocking(pass *analysis.Pass, n ast.Node, mayBlock func(*types.Func) (string, bool),
	report func(ast.Node, string, string)) {
	scanBlockingBefore(pass, n, token.Pos(1<<62), mayBlock, report)
}

// scanBlockingBefore is scanBlocking limited to nodes starting before cut.
func scanBlockingBefore(pass *analysis.Pass, root ast.Node, cut token.Pos,
	mayBlock func(*types.Func) (string, bool), report func(ast.Node, string, string)) {

	direct := func(n ast.Node, desc string) { report(n, desc, desc) }
	frameWalk(root, func(n ast.Node) {
		if n.Pos() >= cut {
			return
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			direct(n, "a channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				direct(n, "a channel receive")
			}
		case *ast.SelectStmt:
			if !hasDefaultClause(n) {
				direct(n, "a select with no default")
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					direct(n, "a range over a channel")
				}
			}
		case *ast.CallExpr:
			if desc, root, ok := blockingCall(pass, n, mayBlock); ok {
				report(n, desc, root)
			}
		}
	})
}

// frameWalk visits every node of root that executes in the current frame:
// it skips go statements (the spawned goroutine is a different frame) and
// function-literal bodies unless the literal is invoked on the spot.
func frameWalk(root ast.Node, visit func(ast.Node)) {
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				// The comm expressions are the select's alternatives, not
				// standalone channel ops — the select node itself carries
				// the blocking semantics. Clause bodies run normally.
				visit(n)
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							walk(s)
						}
					}
				}
				return false
			case *ast.CallExpr:
				if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
					visit(n)
					walk(lit.Body)
					for _, a := range n.Args {
						walk(a)
					}
					return false
				}
			}
			if n != nil {
				visit(n)
			}
			return true
		})
	}
	walk(root)
}

func hasDefaultClause(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingCall reports whether call is a blocking operation: a known
// blocking standard-library call, or a call to a function carrying a
// may-block fact (imported or computed locally this pass). Returns the
// display description and the root blocking primitive.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr,
	mayBlock func(*types.Func) (string, bool)) (string, string, bool) {

	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", "", false // builtin, func value or unresolvable — assume short
	}
	if desc, ok := stdBlocking(fn); ok {
		return desc, desc, true
	}
	if reason, ok := mayBlock(fn); ok {
		return "a call to " + fn.Name() + " (may block: " + reason + ")", reason, true
	}
	return "", "", false
}

// stdBlocking classifies standard-library calls that block by contract.
func stdBlocking(fn *types.Func) (string, bool) {
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	case "sync":
		// (*sync.WaitGroup).Wait and (*sync.Cond).Wait. (Mutex Lock/RLock
		// are handled as region openers, not reported as blocking — a
		// nested lock is a lock-ordering question, not a hold-across-block
		// one.)
		if name == "Wait" {
			return "(sync)." + recvTypeName(fn) + ".Wait", true
		}
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "an http round-trip (http." + name + ")", true
		}
	case "net":
		if strings.HasPrefix(name, "Dial") || name == "Accept" {
			return "net." + name, true
		}
	case "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			return "(os/exec.Cmd)." + name, true
		}
	}
	return "", false
}

func recvTypeName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(interface{ Obj() *types.TypeName }); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// mutexCall reports the receiver expression and method name when call is a
// sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock (including promoted calls on
// an embedded mutex).
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	fn, isFn := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexRecv(fn) {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

func isMutexRecv(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(interface{ Obj() *types.TypeName })
	if !ok {
		return false
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}
