package lockhold_test

import (
	"testing"

	"collsel/internal/analysis/analysistesting"
	"collsel/internal/analysis/lockhold"
)

func TestLockHold(t *testing.T) {
	analysistesting.Run(t, "testdata", lockhold.Analyzer, "lockcheck")
}
