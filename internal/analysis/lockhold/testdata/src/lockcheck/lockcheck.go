// Package lockcheck seeds hold-across-block violations; the expectation
// comments are the analyzer's contract.
package lockcheck

import (
	"net/http"
	"sync"
	"time"
)

type box struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	val int
}

// --- direct blocking ops inside a critical section ---

func (b *box) sendUnderLock() {
	b.mu.Lock()
	b.ch <- 1 // want "b.mu held across a channel send"
	b.mu.Unlock()
}

func (b *box) recvUnderLock() {
	b.mu.Lock()
	b.val = <-b.ch // want "b.mu held across a channel receive"
	b.mu.Unlock()
}

func (b *box) sleepUnderLock() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "b.mu held across time.Sleep"
	b.mu.Unlock()
}

func (b *box) selectUnderLock() {
	b.mu.Lock()
	select { // want "b.mu held across a select with no default"
	case v := <-b.ch:
		b.val = v
	case b.ch <- 0:
	}
	b.mu.Unlock()
}

func (b *box) rangeUnderLock() {
	b.mu.Lock()
	for v := range b.ch { // want "b.mu held across a range over a channel"
		b.val += v
	}
	b.mu.Unlock()
}

func (b *box) httpUnderLock(c *http.Client, req *http.Request) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c.Do(req) // want `b.mu held across an http round-trip \(http.Do\)`
}

// --- non-blocking constructs stay clean ---

func (b *box) selectWithDefault() {
	b.mu.Lock()
	select {
	case v := <-b.ch:
		b.val = v
	default:
	}
	b.mu.Unlock()
}

func (b *box) unlockFirst() {
	b.mu.Lock()
	b.val++
	b.mu.Unlock()
	b.ch <- b.val // lock released: fine
}

func (b *box) readLockPair() {
	b.rw.RLock()
	v := b.val
	b.rw.RUnlock()
	b.ch <- v
}

// A goroutine spawned under the lock blocks in its own frame, not ours.
func (b *box) spawnUnderLock() {
	b.mu.Lock()
	go func() {
		b.ch <- 1
	}()
	b.mu.Unlock()
}

// A function literal merely defined under the lock runs later.
func (b *box) defineUnderLock() func() {
	b.mu.Lock()
	f := func() { b.ch <- 1 }
	b.mu.Unlock()
	return f
}

// ...but an immediately-invoked literal runs right here, under the lock.
func (b *box) invokeUnderLock() {
	b.mu.Lock()
	func() {
		b.ch <- 1 // want "b.mu held across a channel send"
	}()
	b.mu.Unlock()
}

// --- interprocedural: the may-block fact propagates through helpers ---

func napDirect() {
	time.Sleep(time.Millisecond)
}

func napNested() {
	napDirect()
}

func (b *box) transitiveUnderLock() {
	b.mu.Lock()
	napNested() // want `b.mu held across a call to napNested \(may block: time.Sleep\)`
	b.mu.Unlock()
}

// A deferred unlock holds the lock to the end of the function.
func (b *box) deferredUnlock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.val++
	napDirect() // want `b.mu held across a call to napDirect \(may block: time.Sleep\)`
}

// Distinct receivers do not close each other's regions.
func (b *box) twoLocks(other *box) {
	b.mu.Lock()
	other.mu.Lock()
	other.mu.Unlock()
	b.ch <- 1 // want "b.mu held across a channel send"
	b.mu.Unlock()
}

// --- escape hatch ---

func (b *box) handoffJustified() {
	b.mu.Lock()
	//collsel:lockhold handoff protocol: the receiver takes ownership of the lock by design
	b.ch <- 1
	b.mu.Unlock()
}

func (b *box) handoffUnjustified() {
	b.mu.Lock()
	//collsel:lockhold
	b.ch <- 1 // want "b.mu held across a channel send"
	b.mu.Unlock()
}

// A wait in a nested statement is still inside the region.
func (b *box) nestedWait(wg *sync.WaitGroup, cond bool) {
	b.mu.Lock()
	if cond {
		wg.Wait() // want `b.mu held across \(sync\).WaitGroup.Wait`
	}
	b.mu.Unlock()
}
