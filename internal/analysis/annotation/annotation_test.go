package annotation

import (
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

//collsel:wallclock load time is operational
var a int

var b int //collsel:unordered rendering is order-independent

//collsel:ctx
var c int

//collsel:goroutine trailing test marker // want "stripped"
var d int

//collsel:bogus something
var e int
`

func parse(t *testing.T) (*token.FileSet, *File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, Collect(fset, f)
}

func TestCollect(t *testing.T) {
	_, af := parse(t)
	ds := af.All()
	if len(ds) != 5 {
		t.Fatalf("got %d directives, want 5", len(ds))
	}
	checks := []struct {
		verb, just string
		line       int
	}{
		{"wallclock", "load time is operational", 3},
		{"unordered", "rendering is order-independent", 6},
		{"ctx", "", 8},
		{"goroutine", "trailing test marker", 11},
		{"bogus", "something", 14},
	}
	for i, want := range checks {
		d := ds[i]
		if d.Verb != want.verb || d.Justification != want.just || d.Line != want.line {
			t.Errorf("directive %d: got (%q, %q, line %d), want (%q, %q, line %d)",
				i, d.Verb, d.Justification, d.Line, want.verb, want.just, want.line)
		}
	}
}

func TestGuarded(t *testing.T) {
	fset, af := parse(t)
	posOnLine := func(line int) token.Pos {
		return fset.File(token.Pos(1)).LineStart(line)
	}

	// A justified directive guards its own line and the next.
	if af.Guarded("wallclock", posOnLine(3)) == nil {
		t.Error("wallclock directive should guard its own line")
	}
	if af.Guarded("wallclock", posOnLine(4)) == nil {
		t.Error("wallclock directive should guard the following line")
	}
	if af.Guarded("wallclock", posOnLine(5)) != nil {
		t.Error("wallclock directive must not guard two lines down")
	}
	if af.Guarded("unordered", posOnLine(6)) == nil {
		t.Error("trailing directive should guard its own line")
	}

	// An unjustified directive guards nothing.
	if af.Guarded("ctx", posOnLine(9)) != nil {
		t.Error("unjustified directive must not guard")
	}

	// Verbs do not cross-guard.
	if af.Guarded("unordered", posOnLine(4)) != nil {
		t.Error("verb mismatch must not guard")
	}
}

func TestGuardedRange(t *testing.T) {
	fset, af := parse(t)
	posOnLine := func(line int) token.Pos {
		return fset.File(token.Pos(1)).LineStart(line)
	}
	// Directives in src: wallclock on line 3, unordered on line 6 (both
	// justified), ctx on line 8 (unjustified). Ranges model multi-line
	// constructs such as go func(){...}() statements.
	cases := []struct {
		name       string
		verb       string
		start, end int
		guarded    bool
	}{
		{"directive on the start line", "wallclock", 3, 6, true},
		{"directive on the line above the start", "wallclock", 4, 7, true},
		{"trailing directive on the end line", "unordered", 4, 6, true},
		{"directive strictly inside guards nothing", "unordered", 5, 8, false},
		{"directive above the range guards nothing", "wallclock", 5, 8, false},
		{"unjustified directive guards nothing", "ctx", 8, 10, false},
	}
	for _, c := range cases {
		got := af.GuardedRange(c.verb, posOnLine(c.start), posOnLine(c.end)) != nil
		if got != c.guarded {
			t.Errorf("%s: GuardedRange(%q, L%d, L%d) guarded=%v, want %v",
				c.name, c.verb, c.start, c.end, got, c.guarded)
		}
	}
}

func TestKnown(t *testing.T) {
	for _, v := range Verbs {
		if !Known(v) {
			t.Errorf("Known(%q) = false", v)
		}
	}
	if Known("bogus") {
		t.Error(`Known("bogus") = true`)
	}
}
