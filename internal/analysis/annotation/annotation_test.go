package annotation

import (
	"go/parser"
	"go/token"
	"testing"
)

const src = `package p

//collsel:wallclock load time is operational
var a int

var b int //collsel:unordered rendering is order-independent

//collsel:ctx
var c int

//collsel:goroutine trailing test marker // want "stripped"
var d int

//collsel:bogus something
var e int
`

func parse(t *testing.T) (*token.FileSet, *File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, Collect(fset, f)
}

func TestCollect(t *testing.T) {
	_, af := parse(t)
	ds := af.All()
	if len(ds) != 5 {
		t.Fatalf("got %d directives, want 5", len(ds))
	}
	checks := []struct {
		verb, just string
		line       int
	}{
		{"wallclock", "load time is operational", 3},
		{"unordered", "rendering is order-independent", 6},
		{"ctx", "", 8},
		{"goroutine", "trailing test marker", 11},
		{"bogus", "something", 14},
	}
	for i, want := range checks {
		d := ds[i]
		if d.Verb != want.verb || d.Justification != want.just || d.Line != want.line {
			t.Errorf("directive %d: got (%q, %q, line %d), want (%q, %q, line %d)",
				i, d.Verb, d.Justification, d.Line, want.verb, want.just, want.line)
		}
	}
}

func TestGuarded(t *testing.T) {
	fset, af := parse(t)
	posOnLine := func(line int) token.Pos {
		return fset.File(token.Pos(1)).LineStart(line)
	}

	// A justified directive guards its own line and the next.
	if af.Guarded("wallclock", posOnLine(3)) == nil {
		t.Error("wallclock directive should guard its own line")
	}
	if af.Guarded("wallclock", posOnLine(4)) == nil {
		t.Error("wallclock directive should guard the following line")
	}
	if af.Guarded("wallclock", posOnLine(5)) != nil {
		t.Error("wallclock directive must not guard two lines down")
	}
	if af.Guarded("unordered", posOnLine(6)) == nil {
		t.Error("trailing directive should guard its own line")
	}

	// An unjustified directive guards nothing.
	if af.Guarded("ctx", posOnLine(9)) != nil {
		t.Error("unjustified directive must not guard")
	}

	// Verbs do not cross-guard.
	if af.Guarded("unordered", posOnLine(4)) != nil {
		t.Error("verb mismatch must not guard")
	}
}

func TestKnown(t *testing.T) {
	for _, v := range Verbs {
		if !Known(v) {
			t.Errorf("Known(%q) = false", v)
		}
	}
	if Known("bogus") {
		t.Error(`Known("bogus") = true`)
	}
}
