// Package annotation parses the //collsel: suppression directives that the
// collsellint analyzers honor.
//
// A directive has the form
//
//	//collsel:<verb> <justification>
//
// and guards the source line it is written on plus the following line, so
// both placements work:
//
//	t.CreatedUnix = clock() //collsel:wallclock justification here
//
//	//collsel:wallclock justification here
//	t.CreatedUnix = clock()
//
// The justification is mandatory: a directive with an empty justification
// does not suppress anything and is itself reported as a violation by the
// analyzer that owns the verb. Known verbs are "wallclock" and "unordered"
// (determinism), "ctx" (ctxplumb) and "goroutine" (gohygiene).
package annotation

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment prefix shared by every collsellint directive.
const Prefix = "collsel:"

// Verbs lists every directive verb an analyzer in this module understands.
var Verbs = []string{"wallclock", "unordered", "ctx", "goroutine"}

// Directive is one parsed //collsel:<verb> comment.
type Directive struct {
	Verb          string
	Justification string
	Pos           token.Pos // position of the comment
	Line          int       // line the comment sits on
}

// File indexes the directives of one parsed file.
type File struct {
	fset       *token.FileSet
	directives []Directive
}

// Collect parses every //collsel: directive of f. The file must have been
// parsed with comments.
func Collect(fset *token.FileSet, f *ast.File) *File {
	af := &File{fset: fset}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+Prefix)
			if !ok {
				continue
			}
			verb, just, _ := strings.Cut(text, " ")
			// A justification ends at an embedded comment marker so test
			// fixtures can carry trailing // want expectations.
			just, _, _ = strings.Cut(just, "//")
			af.directives = append(af.directives, Directive{
				Verb:          verb,
				Justification: strings.TrimSpace(just),
				Pos:           c.Pos(),
				Line:          fset.Position(c.Pos()).Line,
			})
		}
	}
	return af
}

// All returns every directive of the file, in source order.
func (f *File) All() []Directive { return f.directives }

// Guarded returns the justified directive with the given verb guarding the
// node at pos, or nil. A directive guards its own line and the next one;
// unjustified directives never guard (they are themselves findings).
func (f *File) Guarded(verb string, pos token.Pos) *Directive {
	line := f.fset.Position(pos).Line
	for i := range f.directives {
		d := &f.directives[i]
		if d.Verb == verb && d.Justification != "" && (d.Line == line || d.Line == line-1) {
			return d
		}
	}
	return nil
}

// Known reports whether verb is one an analyzer in this module implements.
func Known(verb string) bool {
	for _, v := range Verbs {
		if v == verb {
			return true
		}
	}
	return false
}
