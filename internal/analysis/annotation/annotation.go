// Package annotation parses the //collsel: suppression directives that the
// collsellint analyzers honor.
//
// A directive has the form
//
//	//collsel:<verb> <justification>
//
// and guards a *node range*: the directive suppresses a finding whose
// reported node starts on the directive's line, starts on the line right
// after it, or — for constructs that span lines, like a `go func() { ... }()`
// statement or a struct-literal field whose value wraps — *ends* on the
// directive's line. All four placements therefore work:
//
//	t.CreatedUnix = clock() //collsel:wallclock justification here
//
//	//collsel:wallclock justification here
//	t.CreatedUnix = clock()
//
//	//collsel:goroutine justification here
//	go func() {
//		...
//	}()
//
//	go func() {
//		...
//	}() //collsel:goroutine justification here
//
// A directive does NOT guard lines strictly inside a multi-line construct:
// an annotation buried in the middle of a function literal's body guards
// nothing (PR 10 pinned this rule down; the pre-PR-10 guard anchored only
// to the reported statement's first line, which silently ignored trailing
// annotations on the closing `}()` of a spanning literal).
//
// The justification is mandatory: a directive with an empty justification
// does not suppress anything and is itself reported as a violation by the
// analyzer that owns the verb, as is a directive with an unknown verb.
// Known verbs are "wallclock" and "unordered" (determinism), "ctx"
// (ctxplumb), "goroutine" (gohygiene), "lockhold" (lockhold), "metric"
// (metrichygiene), "status" (statuscontract) and "checksum" (checksumfield).
package annotation

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the comment prefix shared by every collsellint directive.
const Prefix = "collsel:"

// Verbs lists every directive verb an analyzer in this module understands.
var Verbs = []string{
	"wallclock", "unordered", // determinism
	"ctx",       // ctxplumb
	"goroutine", // gohygiene
	"lockhold",  // lockhold
	"metric",    // metrichygiene
	"status",    // statuscontract
	"checksum",  // checksumfield
}

// Audit, when true, makes Suppressed emit a marker diagnostic at every
// directive that actually suppresses a finding. `collsellint -audit` runs
// the suite with each analyzer's -audit flag set and cross-references the
// markers against the parsed directives: a justified directive without a
// marker is *stale* — it no longer suppresses anything and must be removed.
// Every analyzer registers the flag via RegisterAuditFlag, so the flag set
// differs from a plain lint run and `go vet`'s result cache keys the two
// modes separately.
var Audit bool

// AuditMarker prefixes the diagnostic Suppressed emits in audit mode. The
// collsellint driver greps for it; tests match on it.
const AuditMarker = "audit: //collsel:"

// RegisterAuditFlag registers the shared -audit flag on one analyzer's
// flag set. All analyzers point at the same Audit variable; flags are
// parsed before any analyzer runs, so the shared write is race-free.
func RegisterAuditFlag(fs *flag.FlagSet) {
	fs.BoolVar(&Audit, "audit", Audit,
		"report a marker diagnostic at every //collsel: directive that suppresses a finding (used by collsellint -audit)")
}

// Directive is one parsed //collsel:<verb> comment.
type Directive struct {
	Verb          string
	Justification string
	Pos           token.Pos // position of the comment
	Line          int       // line the comment sits on
}

// File indexes the directives of one parsed file.
type File struct {
	fset       *token.FileSet
	directives []Directive
}

// Collect parses every //collsel: directive of f. The file must have been
// parsed with comments.
func Collect(fset *token.FileSet, f *ast.File) *File {
	af := &File{fset: fset}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+Prefix)
			if !ok {
				continue
			}
			verb, just, _ := strings.Cut(text, " ")
			// A justification ends at an embedded comment marker so test
			// fixtures can carry trailing // want expectations.
			just, _, _ = strings.Cut(just, "//")
			af.directives = append(af.directives, Directive{
				Verb:          verb,
				Justification: strings.TrimSpace(just),
				Pos:           c.Pos(),
				Line:          fset.Position(c.Pos()).Line,
			})
		}
	}
	return af
}

// All returns every directive of the file, in source order.
func (f *File) All() []Directive { return f.directives }

// Guarded returns the justified directive with the given verb guarding the
// single-position node at pos, or nil. Shorthand for GuardedRange(verb,
// pos, pos); prefer GuardedRange with the reported node's true extent so
// trailing annotations on multi-line constructs work.
func (f *File) Guarded(verb string, pos token.Pos) *Directive {
	return f.GuardedRange(verb, pos, pos)
}

// GuardedRange returns the justified directive with the given verb
// guarding the node spanning [pos, end], or nil. The guard rule: the
// directive's line must be the node's first line, the line immediately
// above it, or the node's last line (a trailing annotation on the closing
// `}()` of a spanning literal). Unjustified directives never guard — they
// are themselves findings.
func (f *File) GuardedRange(verb string, pos, end token.Pos) *Directive {
	start := f.fset.Position(pos).Line
	last := start
	if end.IsValid() && end >= pos {
		last = f.fset.Position(end).Line
	}
	for i := range f.directives {
		d := &f.directives[i]
		if d.Verb != verb || d.Justification == "" {
			continue
		}
		if d.Line == start || d.Line == start-1 || d.Line == last {
			return d
		}
	}
	return nil
}

// Suppressed reports whether a justified directive with verb guards the
// node range [pos, end]. In audit mode it additionally emits the marker
// diagnostic at the directive's own position, proving the hatch is live.
// Analyzers call it at every would-be report site:
//
//	if ann.Suppressed(pass, "lockhold", n.Pos(), n.End()) {
//		return
//	}
//	pass.Reportf(...)
func (f *File) Suppressed(pass *analysis.Pass, verb string, pos, end token.Pos) bool {
	d := f.GuardedRange(verb, pos, end)
	if d == nil {
		return false
	}
	if Audit {
		pass.Report(analysis.Diagnostic{
			Pos: d.Pos,
			Message: fmt.Sprintf("%s%s in use (suppresses a %s finding at line %d)",
				AuditMarker, d.Verb, verb, f.fset.Position(pos).Line),
		})
	}
	return true
}

// Known reports whether verb is one an analyzer in this module implements.
func Known(verb string) bool {
	for _, v := range Verbs {
		if v == verb {
			return true
		}
	}
	return false
}
