// Package metrichygiene implements the collsellint analyzer that pins the
// hand-rolled Prometheus exposition surface.
//
// collseld renders /metrics without a client library: `# TYPE` lines are
// format strings and counters are atomic.Int64 fields. That keeps the
// binary dependency-free, but nothing stops a refactor from silently
// breaking the scrapers (cluster_smoke.sh, the chaos suite, operator
// dashboards). The analyzer derives the metric registry from the source
// and enforces:
//
//  1. naming — every metric matches collseld_[a-z0-9_]+; counters end in
//     _total, histograms in _seconds, gauges never end in _total;
//  2. single registration — a metric name is declared (`# TYPE`) at most
//     once per package, with one kind;
//  3. fixed label sets — label keys inside a `name{...}` exposition string
//     are literals, never format verbs (dynamic keys break aggregation);
//  4. monotonic counters — an atomic field rendered as a counter is never
//     Store'd, Swap'ed or Add'ed a negative value.
//
// Metric declarations are recognized in two shapes: a `# TYPE <name>
// <kind>` literal, and a call to a local emitter closure (a func literal
// whose body prints `# TYPE %s <kind>`) with a literal name argument — the
// `counter(...)` / `gauge(...)` idiom internal/serve/metrics.go uses.
// Genuine exceptions carry //collsel:metric <why>.
package metrichygiene

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"collsel/internal/analysis/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name:     "metrichygiene",
	Doc:      "hand-rolled Prometheus metrics: enforce collseld_* naming, single registration, fixed label sets and monotonic counters",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var namePrefix string

func init() {
	Analyzer.Flags.StringVar(&namePrefix, "prefix", "collseld_",
		"required metric name prefix")
	annotation.RegisterAuditFlag(&Analyzer.Flags)
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// decl is one `# TYPE` registration discovered in the package.
type decl struct {
	name string
	kind string // counter, gauge, histogram, summary
	pos  token.Pos
	end  token.Pos
	lit  *ast.BasicLit // exact name literal when the decl came from an emitter call (for suggested fixes)
	call *ast.CallExpr // the emitter call, if any (for counter-backing extraction)
}

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	anns := make(map[*token.File]*annotation.File)
	skip := make(map[*token.File]bool)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if strings.HasSuffix(tf.Name(), "_test.go") {
			skip[tf] = true
			continue
		}
		anns[tf] = annotation.Collect(pass.Fset, f)
	}
	ann := func(p token.Pos) *annotation.File { return anns[pass.Fset.File(p)] }

	// Emitter closures: variables bound to a func literal whose body prints
	// a `# TYPE %s <kind>` template. Calls through them declare metrics.
	emitters := make(map[types.Object]string) // var -> kind
	ins.Preorder([]ast.Node{(*ast.AssignStmt)(nil)}, func(n ast.Node) {
		as := n.(*ast.AssignStmt)
		if skip[pass.Fset.File(n.Pos())] {
			return
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			kind := ""
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if bl, ok := n.(*ast.BasicLit); ok && bl.Kind == token.STRING {
					if s, err := strconv.Unquote(bl.Value); err == nil {
						if k := typeKindOf(s, "%s"); k != "" {
							kind = k
						}
					}
				}
				return kind == ""
			})
			if kind != "" {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					emitters[obj] = kind
				}
			}
		}
	})

	var decls []decl
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil), (*ast.BasicLit)(nil)}, func(n ast.Node) {
		if skip[pass.Fset.File(n.Pos())] {
			return
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok {
				return
			}
			kind, ok := emitters[pass.TypesInfo.ObjectOf(id)]
			if !ok || len(n.Args) == 0 {
				return
			}
			bl, ok := ast.Unparen(n.Args[0]).(*ast.BasicLit)
			if !ok || bl.Kind != token.STRING {
				if !ann(n.Pos()).Suppressed(pass, "metric", n.Pos(), n.End()) {
					pass.Reportf(n.Args[0].Pos(),
						"metric name must be a string literal so the exposition surface is statically known (//collsel:metric <why> to allow)")
				}
				return
			}
			name, err := strconv.Unquote(bl.Value)
			if err != nil {
				return
			}
			decls = append(decls, decl{name: name, kind: kind, pos: n.Pos(), end: n.End(), lit: bl, call: n})
		case *ast.BasicLit:
			if n.Kind != token.STRING {
				return
			}
			s, err := strconv.Unquote(n.Value)
			if err != nil {
				return
			}
			for _, d := range literalDecls(s) {
				decls = append(decls, decl{name: d[0], kind: d[1], pos: n.Pos(), end: n.End()})
			}
			checkLabels(pass, n, s, ann(n.Pos()))
		}
	})

	sort.SliceStable(decls, func(i, j int) bool { return decls[i].pos < decls[j].pos })

	// Rules 1 and 2: naming and single registration.
	first := make(map[string]decl)
	for _, d := range decls {
		a := ann(d.pos)
		base, ok := strings.CutPrefix(d.name, namePrefix)
		switch {
		case !ok || !nameRE.MatchString(base):
			if !a.Suppressed(pass, "metric", d.pos, d.end) {
				pass.Reportf(d.pos, "metric %q must match %s[a-z0-9_]+ (//collsel:metric <why> to allow)", d.name, namePrefix)
			}
		case d.kind == "counter" && !strings.HasSuffix(d.name, "_total"):
			if !a.Suppressed(pass, "metric", d.pos, d.end) {
				diag := analysis.Diagnostic{
					Pos: d.pos,
					Message: "counter " + strconv.Quote(d.name) +
						" must end in _total (//collsel:metric <why> to allow)",
				}
				if d.lit != nil {
					fixed := strconv.Quote(d.name + "_total")
					diag.SuggestedFixes = []analysis.SuggestedFix{{
						Message:   "rename to " + d.name + "_total",
						TextEdits: []analysis.TextEdit{{Pos: d.lit.Pos(), End: d.lit.End(), NewText: []byte(fixed)}},
					}}
				}
				pass.Report(diag)
			}
		case d.kind == "histogram" && !strings.HasSuffix(d.name, "_seconds"):
			if !a.Suppressed(pass, "metric", d.pos, d.end) {
				pass.Reportf(d.pos, "histogram %q must end in _seconds (//collsel:metric <why> to allow)", d.name)
			}
		case d.kind == "gauge" && strings.HasSuffix(d.name, "_total"):
			if !a.Suppressed(pass, "metric", d.pos, d.end) {
				pass.Reportf(d.pos, "gauge %q must not end in _total (that suffix promises a monotonic counter)", d.name)
			}
		}
		if prev, dup := first[d.name]; dup {
			if prev.kind != d.kind {
				pass.Reportf(d.pos, "metric %q re-registered as %s (first registered as %s at %s)",
					d.name, d.kind, prev.kind, pass.Fset.Position(prev.pos))
			} else if !ann(d.pos).Suppressed(pass, "metric", d.pos, d.end) {
				pass.Reportf(d.pos, "metric %q registered more than once (first at %s); a metric is declared exactly once per scrape",
					d.name, pass.Fset.Position(prev.pos))
			}
			continue
		}
		first[d.name] = d
	}

	// Rule 4: counters backed by an atomic field must stay monotonic.
	counterFields := make(map[types.Object]string) // atomic field var -> metric name
	for _, d := range decls {
		if d.kind != "counter" || d.call == nil {
			continue
		}
		for _, arg := range d.call.Args[1:] {
			if v := atomicLoadField(pass, arg); v != nil {
				counterFields[v] = d.name
			}
		}
	}
	if len(counterFields) > 0 {
		ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			if skip[pass.Fset.File(n.Pos())] {
				return
			}
			call := n.(*ast.CallExpr)
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			field := selectedField(pass, sel.X)
			name, backing := "", ""
			if field != nil {
				name, backing = counterFields[field], sel.Sel.Name
			}
			if name == "" {
				return
			}
			bad := ""
			switch backing {
			case "Store", "Swap":
				bad = backing + " on"
			case "Add", "Sub":
				if backing == "Sub" {
					bad = "Sub on"
				} else if v, ok := constValue(pass, call.Args); ok && v < 0 {
					bad = "negative Add on"
				}
			}
			if bad == "" {
				return
			}
			if !ann(n.Pos()).Suppressed(pass, "metric", call.Pos(), call.End()) {
				pass.Reportf(call.Pos(),
					"%s counter-backing field for %q: counters are monotonic — rates computed from a decremented counter go negative (//collsel:metric <why> to allow)",
					bad, name)
			}
		})
	}
	return nil, nil
}

// typeKindOf extracts the kind from a `# TYPE <name> <kind>` line where
// <name> equals the given token (a literal name or a format verb).
func typeKindOf(s, name string) string {
	for _, line := range strings.Split(s, "\n") {
		rest, ok := strings.CutPrefix(line, "# TYPE ")
		if !ok {
			continue
		}
		n, kind, ok := strings.Cut(rest, " ")
		if ok && n == name {
			return strings.TrimSpace(kind)
		}
	}
	return ""
}

// literalDecls extracts (name, kind) pairs from `# TYPE` lines whose name
// is fully literal (no format verb — those declare through an emitter).
func literalDecls(s string) [][2]string {
	var out [][2]string
	for _, line := range strings.Split(s, "\n") {
		rest, ok := strings.CutPrefix(line, "# TYPE ")
		if !ok {
			continue
		}
		name, kind, ok := strings.Cut(rest, " ")
		if !ok || strings.Contains(name, "%") {
			continue
		}
		out = append(out, [2]string{name, strings.TrimSpace(kind)})
	}
	return out
}

// checkLabels flags format verbs used as label *keys* in an exposition
// string: `m{key=%q}` is a fixed label set, `m{%s=%q}` is not.
func checkLabels(pass *analysis.Pass, lit *ast.BasicLit, s string, ann *annotation.File) {
	for _, line := range strings.Split(s, "\n") {
		open := strings.IndexByte(line, '{')
		if open < 0 || !strings.Contains(line[:open], "collseld_") {
			continue
		}
		close := strings.IndexByte(line[open:], '}')
		if close < 0 {
			continue
		}
		for _, pair := range strings.Split(line[open+1:open+close], ",") {
			key, _, ok := strings.Cut(pair, "=")
			if ok && strings.Contains(key, "%") {
				if !ann.Suppressed(pass, "metric", lit.Pos(), lit.End()) {
					pass.Reportf(lit.Pos(),
						"dynamic label key %q in metric exposition: label sets must be fixed at compile time (//collsel:metric <why> to allow)",
						strings.TrimSpace(key))
				}
				return
			}
		}
	}
}

// atomicLoadField returns the struct-field var when arg is a
// `<expr>.<field>.Load()` call on a sync/atomic integer — the idiom that
// binds an atomic field to the metric it backs.
func atomicLoadField(pass *analysis.Pass, arg ast.Expr) types.Object {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Name() != "Load" {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return selectedField(pass, sel.X)
}

// selectedField resolves expr to the struct-field object it selects, if
// any (`m.tableHits` -> the tableHits *types.Var).
func selectedField(pass *analysis.Pass, expr ast.Expr) types.Object {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(sel.Sel)
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// constValue extracts the first argument's constant integer value.
func constValue(pass *analysis.Pass, args []ast.Expr) (int64, bool) {
	if len(args) == 0 {
		return 0, false
	}
	tv, ok := pass.TypesInfo.Types[args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	return v, ok
}
