package metrichygiene_test

import (
	"testing"

	"collsel/internal/analysis/analysistesting"
	"collsel/internal/analysis/metrichygiene"
)

func TestMetricHygiene(t *testing.T) {
	analysistesting.RunWithSuggestedFixes(t, "testdata", metrichygiene.Analyzer, "metriccheck")
}
