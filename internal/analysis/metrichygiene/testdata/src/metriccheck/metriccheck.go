// Package metriccheck seeds exposition-surface violations; the
// expectation comments are the analyzer's contract.
package metriccheck

import (
	"fmt"
	"io"
	"sync/atomic"
)

type metrics struct {
	hits  atomic.Int64
	depth atomic.Int64
}

func render(w io.Writer, m *metrics, dynName string) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	// Clean declarations: prefixed, kind-appropriate suffixes.
	counter("collseld_requests_total", "requests", 1)
	gauge("collseld_queue_depth", "depth", 2)

	// Counter missing _total: flagged, with a suggested rename.
	counter("collseld_hits", "hits", m.hits.Load()) // want `counter "collseld_hits" must end in _total`

	// Gauge pretending to be a counter.
	gauge("collseld_workers_total", "workers", 3) // want `gauge "collseld_workers_total" must not end in _total`

	// Wrong prefix and illegal characters.
	counter("other_requests_total", "requests", 4) // want `metric "other_requests_total" must match collseld_\[a-z0-9_\]\+`
	gauge("collseld_Depth", "depth", 5)            // want `metric "collseld_Depth" must match collseld_\[a-z0-9_\]\+`

	// Dynamic names make the exposition surface unknowable.
	counter(dynName, "dynamic", 6) // want `metric name must be a string literal`

	// Literal # TYPE lines register too.
	fmt.Fprintf(w, "# TYPE collseld_cold_latency histogram\n") // want `histogram "collseld_cold_latency" must end in _seconds`
	fmt.Fprintf(w, "# TYPE collseld_sim_seconds histogram\n")

	// Double registration of the same name.
	fmt.Fprintf(w, "# TYPE collseld_reloads_total counter\n")
	fmt.Fprintf(w, "# TYPE collseld_reloads_total counter\n") // want `metric "collseld_reloads_total" registered more than once`

	// Label keys must be literal: %s as a key breaks aggregation.
	fmt.Fprintf(w, "collseld_cells{%s=%q} %d\n", dynName, "x", 7) // want `dynamic label key "%s" in metric exposition`
	fmt.Fprintf(w, "collseld_cells{table=%q} %d\n", "x", 8)

	// A justified escape hatch keeps a legacy name alive.
	//collsel:metric the chaos harness greps for this exact pre-rename name
	counter("legacy_shed_events", "sheds", 9)

	// An unjustified directive guards nothing.
	//collsel:metric
	counter("legacy_drop_events", "drops", 10) // want `metric "legacy_drop_events" must match collseld_\[a-z0-9_\]\+`
}

// Counter-backing fields are monotonic: only Add with a positive delta.
func mutate(m *metrics) {
	m.hits.Add(1)
	m.hits.Add(-1) // want `negative Add on counter-backing field for "collseld_hits"`
	m.hits.Store(0) // want `Store on counter-backing field for "collseld_hits"`
	m.hits.Swap(0)  // want `Swap on counter-backing field for "collseld_hits"`
	// depth backs a gauge, so resets are fine.
	m.depth.Store(0)
}
