// Package statuscheck seeds status-contract violations; the expectation
// comments are the analyzer's contract.
package statuscheck

import "net/http"

type server struct{}

// The writer helpers themselves may touch the raw response; everything
// routed through them is metered.
func (s *server) httpError(w http.ResponseWriter, endpoint string, code int, msg string) {
	w.WriteHeader(code)
}

func (s *server) writeJSON(w http.ResponseWriter, endpoint string, code int, v interface{}) {
	w.WriteHeader(code)
}

// --- in-contract calls stay clean ---

func (s *server) handleSelect(w http.ResponseWriter) {
	s.httpError(w, "select", http.StatusBadRequest, "bad body")
	s.writeJSON(w, "select", http.StatusOK, nil)
}

// --- contract violations ---

func (s *server) handleBad(w http.ResponseWriter, ep string, code int) {
	s.httpError(w, "healthz", http.StatusTeapot, "teapot") // want `status 418 is outside endpoint "healthz"'s contract \(200/503\)`
	s.writeJSON(w, "debug", http.StatusOK, nil)            // want `endpoint "debug" has no declared status contract`
	s.httpError(w, ep, http.StatusOK, "dynamic")           // want `endpoint passed to httpError must be a string literal`
	s.writeJSON(w, "select", code, nil)                    // want `non-constant status code for endpoint "select"`
}

// --- raw writes bypass the metered helpers ---

func (s *server) handleRaw(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)       // want `raw WriteHeader bypasses the metered writer helpers`
	http.Error(w, "boom", 500)         // want `raw http.Error bypasses the metered writer helpers`
	http.NotFound(w, r)                // want `raw http.NotFound bypasses the metered writer helpers`
	http.Redirect(w, r, "/other", 302) // want `raw http.Redirect bypasses the metered writer helpers`
}

// A nested function literal is still outside the writer helpers.
func (s *server) handleNested(w http.ResponseWriter) {
	respond := func(code int) {
		w.WriteHeader(code) // want `raw WriteHeader bypasses the metered writer helpers`
	}
	respond(http.StatusOK)
}

// A call through a method value is not resolvable to a writer helper, so
// its arguments go unchecked: keep method values out of handler code.
func (s *server) handleMethodValue(w http.ResponseWriter) {
	f := s.writeJSON
	f(w, "nonexistent", 999, nil)
}

// --- escape hatches ---

// A dynamic code that is provably contract-bounded carries a justification.
func (s *server) handleHealth(w http.ResponseWriter, healthy bool) {
	code := http.StatusOK
	if !healthy {
		code = http.StatusServiceUnavailable
	}
	//collsel:status code is 200 or 503 by construction, both in the healthz contract
	s.writeJSON(w, "healthz", code, nil)
}

// An unjustified directive guards nothing.
func (s *server) handleHealthBare(w http.ResponseWriter, code int) {
	//collsel:status
	s.writeJSON(w, "healthz", code, nil) // want `non-constant status code for endpoint "healthz"`
}
