package statuscontract_test

import (
	"testing"

	"collsel/internal/analysis/analysistesting"
	"collsel/internal/analysis/statuscontract"
)

// setFlag repoints one analyzer flag at a test value, restoring the
// default afterwards.
func setFlag(t *testing.T, name, value string) {
	t.Helper()
	old := statuscontract.Analyzer.Flags.Lookup(name).Value.String()
	if err := statuscontract.Analyzer.Flags.Set(name, value); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { statuscontract.Analyzer.Flags.Set(name, old) })
}

func TestStatusContract(t *testing.T) {
	setFlag(t, "scope", "statuscheck")
	analysistesting.Run(t, "testdata", statuscontract.Analyzer, "statuscheck")
}
