// Package statuscontract implements the collsellint analyzer that pins the
// HTTP status surface of the serving layer.
//
// DESIGN.md documents a status ladder per endpoint (200 served, 400
// malformed, 404 uncovered-with-cold-disabled, 429 shed, 499 client
// cancel, 500 selection failure, 503 unavailable/draining, plus the
// endpoint-specific 202/405/409/413/422). Clients, the chaos suite and the
// cluster failover logic all branch on these codes; the fuzz tests can
// only sample the space, so an undocumented status is exactly the kind of
// regression that ships. The analyzer checks, inside the scoped packages:
//
//  1. every call to a response writer helper (httpError / writeJSON) names
//     a declared endpoint with a literal string, and passes a constant
//     status code drawn from that endpoint's contract;
//  2. raw status writes — (http.ResponseWriter).WriteHeader, http.Error,
//     http.NotFound — appear only inside the writer helpers themselves,
//     so every response is metered through countRequest.
//
// A dynamic code that is provably contract-bounded (healthz derives its
// code from the health state machine) is annotated //collsel:status <why>.
package statuscontract

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"collsel/internal/analysis/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name:     "statuscontract",
	Doc:      "HTTP handlers may only write status codes from the declared per-endpoint contract, through the metered writer helpers",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// DefaultContract is the documented status ladder, one entry per endpoint.
// It mirrors DESIGN.md's endpoint table; changing a handler's statuses
// means changing the contract (and the docs) in the same commit.
const DefaultContract = "select:200,400,404,429,499,500,503;" +
	"healthz:200,503;" +
	"reload:200,405,422;" +
	"observe:202,400,404,405,429,500,503;" +
	"peer_cell:200,400,404,405,409,413,503;" +
	"metrics:200"

var (
	scopeFlag    string
	writersFlag  string
	contractFlag string
)

func init() {
	Analyzer.Flags.StringVar(&scopeFlag, "scope", "internal/serve",
		"comma-separated package-path suffixes the status contract applies to")
	Analyzer.Flags.StringVar(&writersFlag, "writers", "httpError,writeJSON",
		"comma-separated method names that write metered HTTP responses (endpoint string and status code as 2nd and 3rd args)")
	Analyzer.Flags.StringVar(&contractFlag, "contract", DefaultContract,
		"per-endpoint status contract: endpoint:code,code;endpoint:code,...")
	annotation.RegisterAuditFlag(&Analyzer.Flags)
}

func inScope(path string) bool {
	for _, s := range strings.Split(scopeFlag, ",") {
		s = strings.TrimSpace(s)
		if s != "" && (path == s || strings.HasSuffix(path, "/"+s)) {
			return true
		}
	}
	return false
}

func parseContract() map[string]map[int64]bool {
	m := make(map[string]map[int64]bool)
	for _, ent := range strings.Split(contractFlag, ";") {
		name, codes, ok := strings.Cut(strings.TrimSpace(ent), ":")
		if !ok {
			continue
		}
		set := make(map[int64]bool)
		for _, c := range strings.Split(codes, ",") {
			if v, err := strconv.ParseInt(strings.TrimSpace(c), 10, 64); err == nil {
				set[v] = true
			}
		}
		m[name] = set
	}
	return m
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	contract := parseContract()

	writers := make(map[string]bool)
	for _, w := range strings.Split(writersFlag, ",") {
		writers[strings.TrimSpace(w)] = true
	}

	anns := make(map[*token.File]*annotation.File)
	skip := make(map[*token.File]bool)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if strings.HasSuffix(tf.Name(), "_test.go") {
			skip[tf] = true
			continue
		}
		anns[tf] = annotation.Collect(pass.Fset, f)
	}

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		tf := pass.Fset.File(n.Pos())
		if skip[tf] {
			return false
		}
		call := n.(*ast.CallExpr)
		ann := anns[tf]

		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return true
		}

		if writers[fn.Name()] && fn.Pkg() == pass.Pkg {
			checkWriterCall(pass, call, fn, contract, ann)
			return true
		}
		checkRawWrite(pass, call, fn, writers, stack, ann)
		return true
	})
	return nil, nil
}

// checkWriterCall validates one httpError/writeJSON call: a literal known
// endpoint and a constant in-contract status code.
func checkWriterCall(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func,
	contract map[string]map[int64]bool, ann *annotation.File) {

	// Writer signature: (w, endpoint, code, ...).
	if len(call.Args) < 3 {
		return
	}
	epArg, codeArg := call.Args[1], call.Args[2]

	lit, ok := ast.Unparen(epArg).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		if !ann.Suppressed(pass, "status", call.Pos(), call.End()) {
			pass.Reportf(epArg.Pos(),
				"endpoint passed to %s must be a string literal so the status contract is statically checkable (//collsel:status <why> to allow)",
				fn.Name())
		}
		return
	}
	endpoint, _ := strconv.Unquote(lit.Value)
	allowed, known := contract[endpoint]
	if !known {
		if !ann.Suppressed(pass, "status", call.Pos(), call.End()) {
			pass.Reportf(epArg.Pos(),
				"endpoint %q has no declared status contract; add it to the -contract spec (known: %s)",
				endpoint, strings.Join(sortedKeys(contract), ", "))
		}
		return
	}

	tv, ok := pass.TypesInfo.Types[codeArg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		if !ann.Suppressed(pass, "status", call.Pos(), call.End()) {
			pass.Reportf(codeArg.Pos(),
				"non-constant status code for endpoint %q: the contract cannot be checked statically (//collsel:status <why it stays in contract> to allow)",
				endpoint)
		}
		return
	}
	code, _ := constant.Int64Val(tv.Value)
	if !allowed[code] {
		if !ann.Suppressed(pass, "status", call.Pos(), call.End()) {
			pass.Reportf(codeArg.Pos(),
				"status %d is outside endpoint %q's contract (%s); extend the contract and DESIGN.md, or fix the handler (//collsel:status <why> to allow)",
				code, endpoint, codeSet(allowed))
		}
	}
}

// checkRawWrite flags WriteHeader / http.Error / http.NotFound outside the
// writer helpers: an unmetered response that bypasses countRequest.
func checkRawWrite(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func,
	writers map[string]bool, stack []ast.Node, ann *annotation.File) {

	raw := ""
	switch {
	case fn.Name() == "WriteHeader" && isResponseWriterMethod(pass, call):
		raw = "WriteHeader"
	case fn.Pkg() != nil && fn.Pkg().Path() == "net/http" &&
		(fn.Name() == "Error" || fn.Name() == "NotFound" || fn.Name() == "Redirect"):
		raw = "http." + fn.Name()
	default:
		return
	}
	for _, n := range stack {
		if d, ok := n.(*ast.FuncDecl); ok && writers[d.Name.Name] {
			return // the helper's own implementation
		}
	}
	if !ann.Suppressed(pass, "status", call.Pos(), call.End()) {
		pass.Reportf(call.Pos(),
			"raw %s bypasses the metered writer helpers (httpError/writeJSON meter every response through countRequest); use a helper (//collsel:status <why> to allow)",
			raw)
	}
}

// isResponseWriterMethod reports whether the call's receiver implements
// http.ResponseWriter's WriteHeader(int) shape.
func isResponseWriterMethod(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	// Either the http.ResponseWriter interface itself or a concrete
	// recorder; the method name plus an int parameter is decisive enough
	// inside the scoped packages.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	return ok && sig.Params().Len() == 1 &&
		types.Identical(sig.Params().At(0).Type(), types.Typ[types.Int])
}

func sortedKeys(m map[string]map[int64]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func codeSet(m map[int64]bool) string {
	codes := make([]int, 0, len(m))
	for c := range m {
		codes = append(codes, int(c))
	}
	sort.Ints(codes)
	parts := make([]string, len(codes))
	for i, c := range codes {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, "/")
}
