package ctxplumb_test

import (
	"testing"

	"collsel/internal/analysis/analysistesting"
	"collsel/internal/analysis/ctxplumb"
)

func TestCtxPlumb(t *testing.T) {
	analysistesting.Run(t, "testdata", ctxplumb.Analyzer, "ctxcheck")
}
