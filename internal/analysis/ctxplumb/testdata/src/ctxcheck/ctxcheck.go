// Package ctxcheck seeds context-plumbing violations; the
// expectation comments are the analyzer's contract.
package ctxcheck

import (
	"context"
	"io"
	"net/http"
)

func root(ctx context.Context) error {
	bg := context.Background() // want "context.Background inside a function that already receives a context"
	_ = bg
	todo := context.TODO() // want "context.TODO inside a function that already receives a context"
	_ = todo

	helper(ctx) // threading the received ctx is fine

	build() // want `ctxcheck.build drops the caller's context: call buildCtx`

	return buildCtx(ctx) // calling the Ctx variant is the fix
}

// Closures inherit the enclosing function's context: a fresh root inside
// one detaches the surrounding request's deadline all the same.
func closure(ctx context.Context) func() {
	return func() {
		_ = context.Background() // want "context.Background inside a function that already receives a context"
		build()                  // want `ctxcheck.build drops the caller's context: call buildCtx`
	}
}

func detached(ctx context.Context) {
	//collsel:ctx leader work must survive an individual requester's cancellation
	work := context.Background()
	_ = work
}

func unjustified(ctx context.Context) {
	//collsel:ctx
	_ = context.Background() // want "context.Background inside a function that already receives a context"
}

// The wrapper pattern stays legal: a function without a ctx parameter may
// root a fresh context for its Ctx sibling.
func wrapper() error {
	return buildCtx(context.Background())
}

func alsoNoCtx() {
	build()
}

func helper(ctx context.Context) {}

func build() error { return nil }

func buildCtx(ctx context.Context) error {
	_ = ctx
	return nil
}

// An *http.Request parameter carries the request's context: handlers must
// derive from r.Context(), not root a fresh one.
func handler(w io.Writer, r *http.Request) {
	_ = context.Background() // want "context.Background inside a function that already receives a context"
	_ = buildCtx(r.Context())
}

// --- nested functions and method values ---

type svc struct{}

// Methods are plain functions to the analyzer: a ctx-receiving method may
// not root a fresh context either.
func (s *svc) run(ctx context.Context) {
	_ = context.Background() // want "context.Background inside a function that already receives a context"
}

// The enclosing-context rule sees through arbitrarily deep literals.
func deeplyNested(ctx context.Context) {
	outer := func() {
		inner := func() {
			_ = context.Background() // want "context.Background inside a function that already receives a context"
			build()                  // want `ctxcheck.build drops the caller's context: call buildCtx`
		}
		inner()
	}
	outer()
}

// A call through a function or method value does not resolve to a callee,
// so the Ctx-sibling rule cannot fire: keep indirections like these out of
// request paths, the analyzer only vouches for direct calls.
func methodValue(ctx context.Context, s *svc) {
	f := build
	_ = f() // unresolvable: deliberately unchecked
	g := s.run
	g(ctx)
}
