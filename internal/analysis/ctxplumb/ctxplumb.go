// Package ctxplumb implements the collsellint analyzer that enforces
// context plumbing: a function that receives a context.Context must thread
// that context, not manufacture a fresh root or silently drop it.
//
// This is exactly the bug class PR 4's deadline work fixed by hand across
// six layers (serve → expt → runner → microbench → mpi → sim): one callee
// in the chain calling context.Background(), or calling the non-Ctx
// variant of an API, disconnects every deadline and cancellation above it.
//
// Two rules apply inside any function (or closure) with a context.Context
// in scope — a context.Context parameter, or an *http.Request parameter,
// whose Context method carries the request's deadline — in non-test code:
//
//  1. no context.Background() / context.TODO() — derive from the received
//     context instead;
//  2. no call to a function F when its package also exports FCtx with a
//     leading context.Context parameter (the repo's convention for
//     context-aware variants: Select/SelectCtx, BuildMatrix/BuildMatrixCtx,
//     RunFig4/RunFig4Ctx, ...) — call FCtx with the received context.
//
// Intentional detachment — e.g. a coalesced cold-path leader whose work
// must survive the requester's cancellation — is annotated in place with
// //collsel:ctx <why>.
package ctxplumb

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"collsel/internal/analysis/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name:     "ctxplumb",
	Doc:      "a function that receives a context.Context must plumb it: no fresh context roots, no calls to the non-Ctx variant of an API",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() { annotation.RegisterAuditFlag(&Analyzer.Flags) }

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	anns := make(map[*token.File]*annotation.File)
	skip := make(map[*token.File]bool)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if strings.HasSuffix(tf.Name(), "_test.go") {
			skip[tf] = true
			continue
		}
		anns[tf] = annotation.Collect(pass.Fset, f)
	}

	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		tf := pass.Fset.File(n.Pos())
		if skip[tf] {
			return false
		}
		if !ctxInScope(pass, stack) {
			return true
		}
		checkCall(pass, n.(*ast.CallExpr), anns[tf])
		return true
	})
	return nil, nil
}

// ctxInScope reports whether any enclosing function on the traversal stack
// declares a context.Context parameter — or an *http.Request one, whose
// Context method carries the request's deadline. Closures inherit the
// context of their enclosing function: a fresh root inside a closure
// detaches the surrounding request's deadline all the same.
func ctxInScope(pass *analysis.Pass, stack []ast.Node) bool {
	for _, n := range stack {
		var ft *ast.FuncType
		switch n := n.(type) {
		case *ast.FuncDecl:
			ft = n.Type
		case *ast.FuncLit:
			ft = n.Type
		default:
			continue
		}
		for _, field := range ft.Params.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if isContextType(t) || isHTTPRequestPtr(t) {
				return true
			}
		}
	}
	return false
}

func isHTTPRequestPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(interface {
		Obj() *types.TypeName
	})
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

func isContextType(t types.Type) bool {
	named, ok := t.(interface {
		Obj() *types.TypeName
	})
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, ann *annotation.File) {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig := fn.Type().(*types.Signature)

	if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		if !ann.Suppressed(pass, "ctx", call.Pos(), call.End()) {
			pass.Reportf(call.Pos(),
				"context.%s inside a function that already receives a context (ctx or *http.Request): derive from it so deadlines and cancellation propagate (//collsel:ctx <why> to detach intentionally)",
				fn.Name())
		}
		return
	}

	// Rule 2: calling F when FCtx exists drops the caller's context.
	if sig.Recv() != nil || strings.HasSuffix(fn.Name(), "Ctx") || hasContextParam(sig) {
		return
	}
	sibling, ok := fn.Pkg().Scope().Lookup(fn.Name() + "Ctx").(*types.Func)
	if !ok {
		return
	}
	ssig := sibling.Type().(*types.Signature)
	if ssig.Params().Len() == 0 || !isContextType(ssig.Params().At(0).Type()) {
		return
	}
	if !ann.Suppressed(pass, "ctx", call.Pos(), call.End()) {
		pass.Reportf(call.Pos(),
			"%s.%s drops the caller's context: call %s with the received ctx instead (//collsel:ctx <why> to allow)",
			fn.Pkg().Name(), fn.Name(), sibling.Name())
	}
}

func hasContextParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
