// Package gocheck seeds goroutine-hygiene violations; the
// expectation comments are the analyzer's contract.
package gocheck

import "sync"

// A WaitGroup-joined worker pool is the tracked construct (the runner's
// grid engine uses exactly this shape).
func pool(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func fireAndForget() {
	go work()   // want "untracked goroutine"
	go func() { // want "untracked goroutine"
		work()
	}()
}

func annotated() {
	//collsel:goroutine joined by the simulation kernel's alive counter and abort unwind
	go work()

	go work() //collsel:goroutine process-lifetime daemon loop, exits with main
}

func unjustified() {
	//collsel:goroutine
	go work() // want "untracked goroutine"
}

func work() {}
