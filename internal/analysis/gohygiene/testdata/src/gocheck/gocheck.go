// Package gocheck seeds goroutine-hygiene violations; the
// expectation comments are the analyzer's contract.
package gocheck

import "sync"

// A WaitGroup-joined worker pool is the tracked construct (the runner's
// grid engine uses exactly this shape).
func pool(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

func fireAndForget() {
	go work()   // want "untracked goroutine"
	go func() { // want "untracked goroutine"
		work()
	}()
}

func annotated() {
	//collsel:goroutine joined by the simulation kernel's alive counter and abort unwind
	go work()

	go work() //collsel:goroutine process-lifetime daemon loop, exits with main
}

func unjustified() {
	//collsel:goroutine
	go work() // want "untracked goroutine"
}

// --- multi-line literals and the trailing-annotation rule ---

// A directive on the closing "}()" line guards the whole go statement: the
// statement's range ends there, and end-line annotations are idiomatic for
// multi-line literals whose first line is taken by the signature.
func trailingAnnotated() {
	go func() {
		work()
		work()
	}() //collsel:goroutine supervised by the owner's retry loop, joined on shutdown
}

// A directive strictly inside the literal's body guards nothing: it is
// neither on the statement's first line, the line above, nor the last.
func innerDirective() {
	go func() { // want "untracked goroutine"
		//collsel:goroutine a body comment does not annotate the spawn site
		work()
	}()
}

// --- nested functions and method values ---

// Spawning from a nested literal is still a spawn.
func nestedSpawn() {
	launch := func() {
		go work() // want "untracked goroutine"
	}
	launch()
}

type svc struct{}

func (s *svc) work() {}

// go with a method value or bound method is tracked like any other.
func methodSpawn(s *svc) {
	go s.work() // want "untracked goroutine"
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.work()
	}()
	wg.Wait()
}

func work() {}
