// Package gohygiene implements the collsellint analyzer that forbids
// fire-and-forget goroutines in non-test code.
//
// The serving stack's chaos harness asserts zero goroutine leaks per
// scenario; an untracked `go` statement is how a leak (or a shutdown race)
// gets reintroduced. A goroutine is considered tracked when its body joins
// a sync.WaitGroup (calls Done on one, as the runner's worker pool does).
// Everything else — the simulation kernel's rank-launch path, a daemon's
// process-lifetime loops — must carry a //collsel:goroutine <why>
// annotation naming the construct that owns the goroutine's lifetime.
package gohygiene

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"collsel/internal/analysis/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name:     "gohygiene",
	Doc:      "go statements in non-test code must be WaitGroup-tracked or annotated with the construct that owns their lifetime",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() { annotation.RegisterAuditFlag(&Analyzer.Flags) }

func run(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	anns := make(map[*token.File]*annotation.File)
	skip := make(map[*token.File]bool)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if strings.HasSuffix(tf.Name(), "_test.go") {
			skip[tf] = true
			continue
		}
		anns[tf] = annotation.Collect(pass.Fset, f)
	}

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		tf := pass.Fset.File(n.Pos())
		if skip[tf] {
			return
		}
		g := n.(*ast.GoStmt)
		// The full statement extent matters here: a `go func() { ... }()`
		// spanning many lines may carry its annotation on the closing `}()`.
		if anns[tf].Suppressed(pass, "goroutine", g.Pos(), g.End()) {
			return
		}
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok && joinsWaitGroup(pass, lit.Body) {
			return
		}
		pass.Reportf(g.Pos(),
			"untracked goroutine: join it via a sync.WaitGroup in its body, or annotate //collsel:goroutine <construct that owns its lifetime>")
	})
	return nil, nil
}

// joinsWaitGroup reports whether the body calls (*sync.WaitGroup).Done,
// directly or deferred — the signature of a pool-tracked worker.
func joinsWaitGroup(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
			found = true
		}
		return !found
	})
	return found
}
