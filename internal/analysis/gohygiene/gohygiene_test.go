package gohygiene_test

import (
	"testing"

	"collsel/internal/analysis/analysistesting"
	"collsel/internal/analysis/gohygiene"
)

func TestGoHygiene(t *testing.T) {
	analysistesting.Run(t, "testdata", gohygiene.Analyzer, "gocheck")
}
