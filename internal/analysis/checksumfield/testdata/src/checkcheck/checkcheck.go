// Package checkcheck models the store artifact: a checksummed Table whose
// envelope must cover every exported field. The expectation comments are
// the analyzer's contract.
package checkcheck

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

type Table struct {
	// Covered fields: marshaled, never zeroed on the canon copy. A newly
	// added field lands here by default and is clean — it only gets
	// flagged once something excludes it from the checksum.
	Machine string
	Factor  float64
	Cells   []Cell

	//collsel:checksum Version IS the checksum; covering it would make the hash self-referential
	Version string

	// A synthetic field the checksum function zeroes without an in-place
	// justification: exactly the drift the analyzer exists to catch.
	CreatedUnix int64 // want `exported field Table.CreatedUnix is unreachable from the artifact checksum \(the checksum function zeroes it on the canon copy\)`

	// json:"-" drops the field from the canonical marshal entirely.
	Debug string `json:"-"` // want `exported field Table.Debug is unreachable from the artifact checksum \(json:"-" keeps it out of the canonical marshal\)`

	// An unjustified directive guards nothing.
	//collsel:checksum
	Scratch string `json:"-"` // want `exported field Table.Scratch is unreachable from the artifact checksum`

	// Unexported fields never reach json.Marshal and are never audited.
	dirty bool
}

type Cell struct {
	MsgBytes int
	Winner   string
	Hint     string `json:"-"` // want `exported field Cell.Hint is unreachable from the artifact checksum`
}

func checksum(t Table) string {
	canon := t
	canon.Version = ""
	// Assignments inside nested literals are still exclusions: the walk
	// covers the whole checksum body.
	func() { canon.CreatedUnix = 0 }()
	b, _ := json.Marshal(canon)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Clearing a target-struct field anywhere else does not exclude it: only
// the checksum function defines the envelope.
func reset(t *Table) {
	t.Machine = ""
}
