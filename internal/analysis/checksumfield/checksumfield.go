// Package checksumfield implements the collsellint analyzer that keeps the
// artifact checksum complete.
//
// A decision-table artifact is provenance: store.Table's SHA-256 envelope
// is what lets a replica trust a gossiped cell, the feedback loop verify a
// recompile, and an operator diff two deployments. The checksum covers a
// JSON canonicalization of the struct, so it covers exactly the exported
// fields that (a) survive json.Marshal and (b) are not zeroed on the canon
// copy inside the checksum function. PR 8 and PR 9 each added Table fields
// by hand and had to remember this; the analyzer remembers instead.
//
// For every target struct (store.Table and store.Cell by default), an
// exported field is flagged when it cannot reach the checksum computation:
// it carries a json:"-" tag, or the checksum function assigns over it on
// the canonical copy. Fields that are excluded on purpose — Version *is*
// the checksum, CreatedUnix is wall-clock provenance — are annotated in
// place with //collsel:checksum <why>.
package checksumfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"collsel/internal/analysis/annotation"
)

var Analyzer = &analysis.Analyzer{
	Name:     "checksumfield",
	Doc:      "every exported field of the checksummed artifact structs must be reachable from the checksum computation or annotated",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	scopeFlag string
	typesFlag string
	funcFlag  string
)

func init() {
	Analyzer.Flags.StringVar(&scopeFlag, "scope", "internal/store",
		"comma-separated package-path suffixes holding the checksummed structs")
	Analyzer.Flags.StringVar(&typesFlag, "types", "Table,Cell",
		"comma-separated struct type names whose exported fields must be checksummed")
	Analyzer.Flags.StringVar(&funcFlag, "func", "checksum",
		"name of the function computing the checksum (assignments to target-struct fields inside it exclude those fields)")
	annotation.RegisterAuditFlag(&Analyzer.Flags)
}

func inScope(path string) bool {
	for _, s := range strings.Split(scopeFlag, ",") {
		s = strings.TrimSpace(s)
		if s != "" && (path == s || strings.HasSuffix(path, "/"+s)) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	targets := make(map[string]bool)
	for _, t := range strings.Split(typesFlag, ",") {
		targets[strings.TrimSpace(t)] = true
	}

	anns := make(map[*token.File]*annotation.File)
	skip := make(map[*token.File]bool)
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if strings.HasSuffix(tf.Name(), "_test.go") {
			skip[tf] = true
			continue
		}
		anns[tf] = annotation.Collect(pass.Fset, f)
	}

	// Pass 1: fields the checksum function zeroes on the canon copy.
	// `canon.Version = ""` inside checksum() excludes Version.
	cleared := make(map[string]map[string]bool) // type name -> field -> true
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		d := n.(*ast.FuncDecl)
		if d.Name.Name != funcFlag || d.Body == nil || skip[pass.Fset.File(d.Pos())] {
			return
		}
		ast.Inspect(d.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				tn := namedTypeName(pass.TypesInfo.TypeOf(sel.X))
				if !targets[tn] {
					continue
				}
				if cleared[tn] == nil {
					cleared[tn] = make(map[string]bool)
				}
				cleared[tn][sel.Sel.Name] = true
			}
			return true
		})
	})

	// Pass 2: audit every exported field of the target structs.
	ins.Preorder([]ast.Node{(*ast.TypeSpec)(nil)}, func(n ast.Node) {
		ts := n.(*ast.TypeSpec)
		tf := pass.Fset.File(n.Pos())
		if skip[tf] || !targets[ts.Name.Name] {
			return
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return
		}
		ann := anns[tf]
		for _, field := range st.Fields.List {
			for _, name := range field.Names {
				if !name.IsExported() {
					continue
				}
				excluded := ""
				switch {
				case jsonSkipped(field):
					excluded = `json:"-" keeps it out of the canonical marshal`
				case cleared[ts.Name.Name][name.Name]:
					excluded = "the " + funcFlag + " function zeroes it on the canon copy"
				default:
					continue
				}
				if ann.Suppressed(pass, "checksum", field.Pos(), field.End()) {
					continue
				}
				pass.Reportf(name.Pos(),
					"exported field %s.%s is unreachable from the artifact checksum (%s): a silent-drift channel — include it, or annotate //collsel:checksum <why it is provenance-exempt>",
					ts.Name.Name, name.Name, excluded)
			}
		}
	})
	return nil, nil
}

func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(interface{ Obj() *types.TypeName }); ok {
		return n.Obj().Name()
	}
	return ""
}

func jsonSkipped(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return false
	}
	tag, ok := reflect.StructTag(raw).Lookup("json")
	return ok && (tag == "-" || strings.HasPrefix(tag, "-,"))
}
