package checksumfield_test

import (
	"testing"

	"collsel/internal/analysis/analysistesting"
	"collsel/internal/analysis/checksumfield"
)

// setFlag repoints one analyzer flag at a test value, restoring the
// default afterwards.
func setFlag(t *testing.T, name, value string) {
	t.Helper()
	old := checksumfield.Analyzer.Flags.Lookup(name).Value.String()
	if err := checksumfield.Analyzer.Flags.Set(name, value); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { checksumfield.Analyzer.Flags.Set(name, old) })
}

func TestChecksumField(t *testing.T) {
	setFlag(t, "scope", "checkcheck")
	analysistesting.Run(t, "testdata", checksumfield.Analyzer, "checkcheck")
}
