// Package analysistesting runs a go/analysis analyzer over a testdata
// package and checks its diagnostics against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// The upstream analysistest depends on go/packages and therefore on
// network module resolution; this repo vendors only the analyzer runtime
// (see DESIGN.md "Enforced invariants"), so the harness here loads the
// testdata package directly: files are parsed from
// <testdata>/src/<pkg>/*.go and type-checked with the source importer,
// which resolves the (stdlib-only) imports from GOROOT without touching
// the network.
//
// Expectations use the analysistest syntax: a comment of the form
//
//	// want "regexp" `another regexp`
//
// declares that the analyzer must report, on that line, one diagnostic
// matching each listed regexp. Diagnostics without a matching expectation
// and expectations without a matching diagnostic both fail the test.
package analysistesting

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads <testdata>/src/<pkg> and applies a (running its Requires
// first), then compares diagnostics against the package's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()

	dir := filepath.Join(testdata, "src", pkg)
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}

	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Errorf("type error: %v", err) },
	}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", pkg, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", runtime.GOARCH),
		ReadFile:   os.ReadFile,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ResultOf:   make(map[*analysis.Analyzer]interface{}),
	}
	if err := runWithRequires(pass, a, map[*analysis.Analyzer]bool{}); err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	checkDiagnostics(t, fset, files, diags)
}

// runWithRequires runs a's prerequisite analyzers (facts-free, as all of
// this module's analyzers are), stores their results in pass.ResultOf,
// then runs a itself.
func runWithRequires(pass *analysis.Pass, a *analysis.Analyzer, done map[*analysis.Analyzer]bool) error {
	for _, req := range a.Requires {
		if done[req] {
			continue
		}
		if err := runWithRequires(pass, req, done); err != nil {
			return err
		}
	}
	sub := *pass
	sub.Analyzer = a
	if a != pass.Analyzer {
		// Prerequisites must not report through the tested analyzer.
		sub.Report = func(analysis.Diagnostic) {}
	}
	res, err := a.Run(&sub)
	if err != nil {
		return fmt.Errorf("%s: %w", a.Name, err)
	}
	pass.ResultOf[a] = res
	done[a] = true
	return nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// expectation is one want regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The expectation may trail another comment on the same
				// token (e.g. a //collsel: directive under test), so find
				// the marker anywhere in the comment.
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				res, err := parseWants(rest)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants splits `"re" "re2"` / backquoted forms into compiled regexps.
func parseWants(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		var lit string
		switch s[0] {
		case '"':
			q, err := strconv.QuotedPrefix(s)
			if err != nil {
				return nil, fmt.Errorf("bad quoted regexp in %q", s)
			}
			lit, err = strconv.Unquote(q)
			if err != nil {
				return nil, err
			}
			s = s[len(q):]
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			lit = s[1 : 1+end]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want expectation must be a quoted or backquoted regexp, got %q", s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
}
