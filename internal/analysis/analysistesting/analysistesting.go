// Package analysistesting runs a go/analysis analyzer over a testdata
// package and checks its diagnostics against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// The upstream analysistest depends on go/packages and therefore on
// network module resolution; this repo vendors only the analyzer runtime
// (see DESIGN.md "Enforced invariants"), so the harness here loads the
// testdata package directly: files are parsed from
// <testdata>/src/<pkg>/*.go and type-checked with the source importer,
// which resolves the (stdlib-only) imports from GOROOT without touching
// the network.
//
// Expectations use the analysistest syntax: a comment of the form
//
//	// want "regexp" `another regexp`
//
// declares that the analyzer must report, on that line, one diagnostic
// matching each listed regexp. Diagnostics without a matching expectation
// and expectations without a matching diagnostic both fail the test.
package analysistesting

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads <testdata>/src/<pkg> and applies a (running its Requires
// first), then compares diagnostics against the package's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	run(t, testdata, a, pkg, false)
}

// RunWithSuggestedFixes is Run plus golden-file checking: every suggested
// fix reported by the analyzer is applied to its file, and the result must
// match the <file>.golden sibling.
func RunWithSuggestedFixes(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	run(t, testdata, a, pkg, true)
}

func run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string, fixes bool) {
	t.Helper()

	dir := filepath.Join(testdata, "src", pkg)
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}

	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Instances:    make(map[*ast.Ident]types.Instance),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		FileVersions: make(map[*ast.File]string),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Errorf("type error: %v", err) },
	}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", pkg, err)
	}

	var diags []analysis.Diagnostic
	facts := newFactStore()
	pass := &analysis.Pass{
		Analyzer:          a,
		Fset:              fset,
		Files:             files,
		Pkg:               tpkg,
		TypesInfo:         info,
		TypesSizes:        types.SizesFor("gc", runtime.GOARCH),
		ReadFile:          os.ReadFile,
		Report:            func(d analysis.Diagnostic) { diags = append(diags, d) },
		ResultOf:          make(map[*analysis.Analyzer]interface{}),
		ImportObjectFact:  facts.importObjectFact,
		ExportObjectFact:  facts.exportObjectFact,
		ImportPackageFact: facts.importPackageFact,
		ExportPackageFact: facts.exportPackageFact,
		AllObjectFacts:    facts.allObjectFacts,
		AllPackageFacts:   facts.allPackageFacts,
	}
	if err := runWithRequires(pass, a, map[*analysis.Analyzer]bool{}); err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	checkDiagnostics(t, fset, files, diags)
	if fixes {
		checkSuggestedFixes(t, fset, dir, diags)
	}
}

// factStore is the in-memory substitute for the driver's fact
// serialization. The harness loads a single package, so "imported" facts
// are exactly those exported earlier in the same run — which matches how
// this module's analyzers use facts for intra-package fixed points
// (cross-package propagation is exercised by the real `go vet` run over
// the tree).
type factStore struct {
	obj map[types.Object][]analysis.Fact
	pkg map[*types.Package][]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: make(map[types.Object][]analysis.Fact),
		pkg: make(map[*types.Package][]analysis.Fact),
	}
}

// copyFact assigns a stored fact of the same concrete type into ptr and
// reports whether one was found.
func copyFact(stored []analysis.Fact, ptr analysis.Fact) bool {
	want := reflect.TypeOf(ptr)
	for _, f := range stored {
		if reflect.TypeOf(f) == want {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

func (s *factStore) importObjectFact(obj types.Object, ptr analysis.Fact) bool {
	return copyFact(s.obj[obj], ptr)
}

func (s *factStore) exportObjectFact(obj types.Object, fact analysis.Fact) {
	s.obj[obj] = append(s.obj[obj], fact)
}

func (s *factStore) importPackageFact(pkg *types.Package, ptr analysis.Fact) bool {
	// See exportPackageFact: all package facts live under the nil key.
	return copyFact(s.pkg[nil], ptr)
}

func (s *factStore) exportPackageFact(fact analysis.Fact) {
	// Single-package harness: package facts attach to the tested package
	// only; the key is irrelevant as long as import and export agree.
	s.pkg[nil] = append(s.pkg[nil], fact)
}

func (s *factStore) allObjectFacts() []analysis.ObjectFact {
	var out []analysis.ObjectFact
	for obj, facts := range s.obj {
		for _, f := range facts {
			out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.Pos() < out[j].Object.Pos() })
	return out
}

func (s *factStore) allPackageFacts() []analysis.PackageFact {
	var out []analysis.PackageFact
	for pkg, facts := range s.pkg {
		for _, f := range facts {
			out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
		}
	}
	return out
}

// checkSuggestedFixes applies every reported fix to its file and compares
// the result against the .golden sibling (testdata/src/<pkg>/<file>.golden).
func checkSuggestedFixes(t *testing.T, fset *token.FileSet, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		for _, fix := range d.SuggestedFixes {
			for _, te := range fix.TextEdits {
				p := fset.Position(te.Pos)
				end := te.End
				if !end.IsValid() {
					end = te.Pos
				}
				perFile[p.Filename] = append(perFile[p.Filename],
					edit{start: p.Offset, end: fset.Position(end).Offset, text: te.NewText})
			}
		}
	}
	if len(perFile) == 0 {
		t.Errorf("RunWithSuggestedFixes: analyzer reported no suggested fixes")
		return
	}
	for file, edits := range perFile {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			if e.start < 0 || e.end > len(src) || e.start > e.end {
				t.Fatalf("%s: suggested fix edit out of range [%d,%d)", file, e.start, e.end)
			}
			src = append(src[:e.start], append(append([]byte(nil), e.text...), src[e.end:]...)...)
		}
		golden := file + ".golden"
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("read golden %s: %v", golden, err)
		}
		if string(src) != string(want) {
			t.Errorf("suggested fixes applied to %s do not match %s:\n--- got ---\n%s\n--- want ---\n%s",
				filepath.Base(file), filepath.Base(golden), src, want)
		}
	}
}

// runWithRequires runs a's prerequisite analyzers (facts-free, as all of
// this module's analyzers are), stores their results in pass.ResultOf,
// then runs a itself.
func runWithRequires(pass *analysis.Pass, a *analysis.Analyzer, done map[*analysis.Analyzer]bool) error {
	for _, req := range a.Requires {
		if done[req] {
			continue
		}
		if err := runWithRequires(pass, req, done); err != nil {
			return err
		}
	}
	sub := *pass
	sub.Analyzer = a
	if a != pass.Analyzer {
		// Prerequisites must not report through the tested analyzer.
		sub.Report = func(analysis.Diagnostic) {}
	}
	res, err := a.Run(&sub)
	if err != nil {
		return fmt.Errorf("%s: %w", a.Name, err)
	}
	pass.ResultOf[a] = res
	done[a] = true
	return nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// expectation is one want regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The expectation may trail another comment on the same
				// token (e.g. a //collsel: directive under test), so find
				// the marker anywhere in the comment.
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				rest := c.Text[idx+len("// want "):]
				pos := fset.Position(c.Pos())
				res, err := parseWants(rest)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, re := range res {
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants splits `"re" "re2"` / backquoted forms into compiled regexps.
func parseWants(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		var lit string
		switch s[0] {
		case '"':
			q, err := strconv.QuotedPrefix(s)
			if err != nil {
				return nil, fmt.Errorf("bad quoted regexp in %q", s)
			}
			lit, err = strconv.Unquote(q)
			if err != nil {
				return nil, err
			}
			s = s[len(q):]
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			lit = s[1 : 1+end]
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("want expectation must be a quoted or backquoted regexp, got %q", s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
}
