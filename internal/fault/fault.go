// Package fault implements deterministic fault injection for the simulated
// machines: message drops, transient link degradation, straggler ranks and
// rank crashes at scheduled virtual times.
//
// Like the noise model, a fault schedule is a pure function of the platform
// fingerprint, the communicator size and the run seed — never of execution
// order. Per-message drop decisions are stateless hashes of the message's
// identity (source, destination, per-pair sequence number, protocol channel,
// delivery attempt), so a simulation replayed with the same seed drops
// exactly the same packets no matter how kernel events interleave, and the
// grid engine stays bit-identical at any worker count.
package fault

import (
	"fmt"
	"hash/fnv"
	"strings"

	"collsel/internal/netmodel"
)

// Default retransmission parameters, used when the profile leaves the
// corresponding field zero.
const (
	// DefaultRetryTimeoutNs is the base retransmission timeout.
	DefaultRetryTimeoutNs = 100_000
	// DefaultRetryBackoff is the exponential backoff factor between retries.
	DefaultRetryBackoff = 2.0
	// DefaultMaxRetries is the number of retransmissions before a message
	// fault is surfaced as an error.
	DefaultMaxRetries = 5
)

// Profile declares what faults a run injects. It is a flat value struct so
// it can be fingerprinted into cache keys; the zero value (Enabled false)
// injects nothing.
type Profile struct {
	// Enabled turns fault injection on.
	Enabled bool

	// DropProb is the probability that any single message transmission
	// attempt (eager payload, rendezvous RTS, or rendezvous data) is lost
	// and must be retransmitted.
	DropProb float64

	// RetryTimeoutNs is the base retransmission timeout; 0 uses
	// DefaultRetryTimeoutNs.
	RetryTimeoutNs int64
	// RetryBackoff multiplies the timeout after each failed attempt; values
	// < 1 use DefaultRetryBackoff.
	RetryBackoff float64
	// MaxRetries caps the retransmissions per message; 0 uses
	// DefaultMaxRetries. A negative value means no retries at all.
	MaxRetries int

	// DegradeProb is the per-rank probability that the rank's outgoing
	// links suffer one transient degradation window.
	DegradeProb float64
	// DegradeLatencyFactor multiplies link latency inside a degradation
	// window (values <= 1 leave latency unchanged).
	DegradeLatencyFactor float64
	// DegradeBandwidthFactor multiplies link bandwidth inside a window
	// (e.g. 0.25 = quarter bandwidth; values <= 0 or >= 1 leave it alone).
	DegradeBandwidthFactor float64
	// DegradeStartMaxNs bounds the uniform window start time.
	DegradeStartMaxNs int64
	// DegradeDurationNs is the window length.
	DegradeDurationNs int64

	// StragglerProb is the per-rank probability of being a straggler.
	StragglerProb float64
	// StragglerFactor multiplies a straggler's compute time (> 1).
	StragglerFactor float64

	// CrashProb is the per-rank probability of crashing during the run.
	CrashProb float64
	// CrashMaxNs bounds the uniform crash virtual time.
	CrashMaxNs int64
}

// retryTimeoutNs returns the effective base timeout.
func (p Profile) retryTimeoutNs() int64 {
	if p.RetryTimeoutNs > 0 {
		return p.RetryTimeoutNs
	}
	return DefaultRetryTimeoutNs
}

// retryBackoff returns the effective backoff factor.
func (p Profile) retryBackoff() float64 {
	if p.RetryBackoff >= 1 {
		return p.RetryBackoff
	}
	return DefaultRetryBackoff
}

// maxRetries returns the effective retry cap.
func (p Profile) maxRetries() int {
	if p.MaxRetries > 0 {
		return p.MaxRetries
	}
	if p.MaxRetries < 0 {
		return 0
	}
	return DefaultMaxRetries
}

// Channel identifies which protocol message a drop decision applies to, so
// the three transmissions of one logical message hash independently.
type Channel int

const (
	// ChannelEager is an eager-protocol payload.
	ChannelEager Channel = iota + 1
	// ChannelRTS is a rendezvous ready-to-send envelope.
	ChannelRTS
	// ChannelData is a rendezvous data transfer (post-CTS).
	ChannelData
)

// window is one transient link-degradation interval on a rank's ports.
type window struct {
	startNs, endNs int64
}

// Plan is the materialized fault schedule of one run. A nil *Plan is valid
// and injects nothing, so callers can thread it unconditionally.
type Plan struct {
	prof Profile
	seed uint64
	// degrade[r] is rank r's outgoing-link degradation window (zero-length
	// when the rank is unaffected).
	degrade []window
	// straggle[r] is rank r's compute multiplier (1 = nominal).
	straggle []float64
	// crashNs[r] is rank r's crash virtual time; -1 = never.
	crashNs []int64
}

// NewPlan derives the fault schedule for size ranks on platform pl with the
// given seed. It returns nil when the profile is disabled.
func NewPlan(pl *netmodel.Platform, size int, seed int64, prof Profile) *Plan {
	if !prof.Enabled {
		return nil
	}
	base := mix(fingerprint(pl) ^ mix(uint64(seed)) ^ mix(uint64(size)+0x51a9b7))
	p := &Plan{
		prof:     prof,
		seed:     base,
		degrade:  make([]window, size),
		straggle: make([]float64, size),
		crashNs:  make([]int64, size),
	}
	for r := 0; r < size; r++ {
		p.straggle[r] = 1
		if prof.StragglerProb > 0 && prof.StragglerFactor > 1 &&
			p.unit(saltStraggler, uint64(r)) < prof.StragglerProb {
			p.straggle[r] = prof.StragglerFactor
		}
		p.crashNs[r] = -1
		if prof.CrashProb > 0 && prof.CrashMaxNs > 0 &&
			p.unit(saltCrash, uint64(r)) < prof.CrashProb {
			p.crashNs[r] = int64(p.unit(saltCrashAt, uint64(r)) * float64(prof.CrashMaxNs))
		}
		if prof.DegradeProb > 0 && prof.DegradeDurationNs > 0 &&
			p.unit(saltDegrade, uint64(r)) < prof.DegradeProb {
			start := int64(p.unit(saltDegradeAt, uint64(r)) * float64(max64(prof.DegradeStartMaxNs, 1)))
			p.degrade[r] = window{startNs: start, endNs: start + prof.DegradeDurationNs}
		}
	}
	return p
}

// Profile returns the profile the plan was derived from (zero for nil).
func (p *Plan) Profile() Profile {
	if p == nil {
		return Profile{}
	}
	return p.prof
}

// Drop decides whether transmission attempt number attempt of the message
// identified by (src, dst, pseq, ch) is lost. The decision is a pure hash
// of those coordinates and the plan seed.
func (p *Plan) Drop(src, dst int, pseq int64, ch Channel, attempt int) bool {
	if p == nil || p.prof.DropProb <= 0 || src == dst {
		return false
	}
	u := p.unit(saltDrop, uint64(src), uint64(dst), uint64(pseq), uint64(ch), uint64(attempt))
	return u < p.prof.DropProb
}

// LinkFactors returns the (latency, bandwidth) multipliers in effect on
// rank src's outgoing links at virtual time atNs. Both are 1 outside any
// degradation window.
func (p *Plan) LinkFactors(src int, atNs int64) (latency, bandwidth float64) {
	if p == nil || src >= len(p.degrade) {
		return 1, 1
	}
	w := p.degrade[src]
	if w.endNs <= w.startNs || atNs < w.startNs || atNs >= w.endNs {
		return 1, 1
	}
	latency, bandwidth = 1, 1
	if p.prof.DegradeLatencyFactor > 1 {
		latency = p.prof.DegradeLatencyFactor
	}
	if p.prof.DegradeBandwidthFactor > 0 && p.prof.DegradeBandwidthFactor < 1 {
		bandwidth = p.prof.DegradeBandwidthFactor
	}
	return latency, bandwidth
}

// StragglerFactor returns rank r's static compute multiplier (>= 1).
func (p *Plan) StragglerFactor(r int) float64 {
	if p == nil || r >= len(p.straggle) {
		return 1
	}
	return p.straggle[r]
}

// CrashAtNs returns the virtual time at which rank r crashes, and whether
// it crashes at all.
func (p *Plan) CrashAtNs(r int) (int64, bool) {
	if p == nil || r >= len(p.crashNs) || p.crashNs[r] < 0 {
		return 0, false
	}
	return p.crashNs[r], true
}

// MaxRetries returns the retransmission cap per message.
func (p *Plan) MaxRetries() int {
	if p == nil {
		return 0
	}
	return p.prof.maxRetries()
}

// RetryDelayNs returns the backoff delay before retransmission attempt+1:
// timeout * backoff^attempt.
func (p *Plan) RetryDelayNs(attempt int) int64 {
	if p == nil {
		return DefaultRetryTimeoutNs
	}
	d := float64(p.prof.retryTimeoutNs())
	for i := 0; i < attempt; i++ {
		d *= p.prof.retryBackoff()
	}
	return int64(d)
}

// Schedule renders the per-rank fault schedule as a canonical string, used
// by determinism tests to assert bit-identical plans across runs.
func (p *Plan) Schedule() string {
	if p == nil {
		return "fault: none"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault: seed=%016x drop=%g retries=%d\n", p.seed, p.prof.DropProb, p.prof.maxRetries())
	for r := range p.straggle {
		if p.straggle[r] != 1 {
			fmt.Fprintf(&b, "rank %d: straggler x%g\n", r, p.straggle[r])
		}
		if p.crashNs[r] >= 0 {
			fmt.Fprintf(&b, "rank %d: crash at t=%d ns\n", r, p.crashNs[r])
		}
		if w := p.degrade[r]; w.endNs > w.startNs {
			fmt.Fprintf(&b, "rank %d: degraded links [%d, %d) ns\n", r, w.startNs, w.endNs)
		}
	}
	return b.String()
}

// --- deterministic hashing ---------------------------------------------------

const (
	saltDrop uint64 = iota + 0xfa017
	saltStraggler
	saltCrash
	saltCrashAt
	saltDegrade
	saltDegradeAt
)

// mix is the SplitMix64 finalizer: a cheap, well-distributed 64-bit hash.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit hashes the plan seed with the given salts into a uniform [0, 1).
func (p *Plan) unit(salts ...uint64) float64 {
	h := p.seed
	for _, s := range salts {
		h = mix(h ^ s)
	}
	return float64(h>>11) / float64(1<<53)
}

// fingerprint hashes a platform's full parameter set, so plans derived on
// different machines (or differently tuned copies of one machine) diverge.
func fingerprint(pl *netmodel.Platform) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", *pl)
	return h.Sum64()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
