package fault

import (
	"math"
	"testing"

	"collsel/internal/netmodel"
)

func enabledProfile() Profile {
	return Profile{
		Enabled:                true,
		DropProb:               0.1,
		StragglerProb:          0.3,
		StragglerFactor:        2.5,
		CrashProb:              0.2,
		CrashMaxNs:             1_000_000,
		DegradeProb:            0.4,
		DegradeLatencyFactor:   4,
		DegradeBandwidthFactor: 0.25,
		DegradeStartMaxNs:      500_000,
		DegradeDurationNs:      200_000,
	}
}

func TestDisabledProfileYieldsNilPlan(t *testing.T) {
	if p := NewPlan(netmodel.SimCluster(), 16, 1, Profile{}); p != nil {
		t.Fatalf("disabled profile produced a plan: %v", p)
	}
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.Drop(0, 1, 0, ChannelEager, 0) {
		t.Error("nil plan dropped a message")
	}
	if lat, bw := p.LinkFactors(0, 0); lat != 1 || bw != 1 {
		t.Errorf("nil plan degraded a link: %g, %g", lat, bw)
	}
	if f := p.StragglerFactor(0); f != 1 {
		t.Errorf("nil plan straggled: %g", f)
	}
	if _, ok := p.CrashAtNs(0); ok {
		t.Error("nil plan crashed a rank")
	}
}

func TestZeroProbabilitiesInjectNothing(t *testing.T) {
	p := NewPlan(netmodel.SimCluster(), 64, 7, Profile{Enabled: true})
	if p == nil {
		t.Fatal("enabled profile must materialize a plan")
	}
	for r := 0; r < 64; r++ {
		if f := p.StragglerFactor(r); f != 1 {
			t.Fatalf("rank %d straggles: %g", r, f)
		}
		if _, ok := p.CrashAtNs(r); ok {
			t.Fatalf("rank %d crashes", r)
		}
		if lat, bw := p.LinkFactors(r, 12345); lat != 1 || bw != 1 {
			t.Fatalf("rank %d degraded: %g %g", r, lat, bw)
		}
	}
	for seq := int64(0); seq < 1000; seq++ {
		if p.Drop(0, 1, seq, ChannelEager, 0) {
			t.Fatal("zero drop probability dropped a message")
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	prof := enabledProfile()
	a := NewPlan(netmodel.Hydra(), 128, 42, prof)
	b := NewPlan(netmodel.Hydra(), 128, 42, prof)
	if a.Schedule() != b.Schedule() {
		t.Fatalf("same inputs, different schedules:\n%s\nvs\n%s", a.Schedule(), b.Schedule())
	}
	for seq := int64(0); seq < 200; seq++ {
		for att := 0; att < 3; att++ {
			if a.Drop(3, 17, seq, ChannelEager, att) != b.Drop(3, 17, seq, ChannelEager, att) {
				t.Fatalf("drop decision diverged at seq %d attempt %d", seq, att)
			}
		}
	}
}

func TestPlanVariesWithSeedAndPlatform(t *testing.T) {
	prof := enabledProfile()
	base := NewPlan(netmodel.Hydra(), 128, 42, prof)
	if other := NewPlan(netmodel.Hydra(), 128, 43, prof); other.Schedule() == base.Schedule() {
		t.Error("different seeds produced identical schedules")
	}
	if other := NewPlan(netmodel.Galileo100(), 128, 42, prof); other.Schedule() == base.Schedule() {
		t.Error("different platforms produced identical schedules")
	}
}

func TestDropRateApproximatesProbability(t *testing.T) {
	p := NewPlan(netmodel.SimCluster(), 16, 9, Profile{Enabled: true, DropProb: 0.2})
	n, dropped := 20000, 0
	for seq := 0; seq < n; seq++ {
		if p.Drop(1, 2, int64(seq), ChannelEager, 0) {
			dropped++
		}
	}
	got := float64(dropped) / float64(n)
	if math.Abs(got-0.2) > 0.02 {
		t.Fatalf("drop rate %.3f, want ~0.2", got)
	}
}

func TestSelfMessagesNeverDrop(t *testing.T) {
	p := NewPlan(netmodel.SimCluster(), 16, 9, Profile{Enabled: true, DropProb: 1})
	if p.Drop(3, 3, 0, ChannelEager, 0) {
		t.Fatal("self message dropped")
	}
}

func TestRetryDelayBacksOffExponentially(t *testing.T) {
	p := NewPlan(netmodel.SimCluster(), 4, 1, Profile{
		Enabled: true, DropProb: 0.5, RetryTimeoutNs: 1000, RetryBackoff: 2, MaxRetries: 3,
	})
	if got := p.RetryDelayNs(0); got != 1000 {
		t.Errorf("attempt 0 delay %d, want 1000", got)
	}
	if got := p.RetryDelayNs(2); got != 4000 {
		t.Errorf("attempt 2 delay %d, want 4000", got)
	}
	if got := p.MaxRetries(); got != 3 {
		t.Errorf("max retries %d, want 3", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := NewPlan(netmodel.SimCluster(), 4, 1, Profile{Enabled: true, DropProb: 0.5})
	if got := p.MaxRetries(); got != DefaultMaxRetries {
		t.Errorf("default max retries %d, want %d", got, DefaultMaxRetries)
	}
	if got := p.RetryDelayNs(0); got != DefaultRetryTimeoutNs {
		t.Errorf("default delay %d, want %d", got, DefaultRetryTimeoutNs)
	}
	neg := NewPlan(netmodel.SimCluster(), 4, 1, Profile{Enabled: true, DropProb: 0.5, MaxRetries: -1})
	if got := neg.MaxRetries(); got != 0 {
		t.Errorf("negative max retries should mean zero, got %d", got)
	}
}

func TestDegradationWindowFactors(t *testing.T) {
	prof := enabledProfile()
	prof.DegradeProb = 1 // every rank degraded
	p := NewPlan(netmodel.SimCluster(), 8, 5, prof)
	found := false
	for r := 0; r < 8; r++ {
		w := p.degrade[r]
		if w.endNs <= w.startNs {
			t.Fatalf("rank %d has no window despite prob 1", r)
		}
		lat, bw := p.LinkFactors(r, w.startNs)
		if lat == 4 && bw == 0.25 {
			found = true
		}
		if l2, b2 := p.LinkFactors(r, w.endNs); l2 != 1 || b2 != 1 {
			t.Fatalf("rank %d degraded outside window: %g %g", r, l2, b2)
		}
	}
	if !found {
		t.Fatal("no rank reported degraded factors inside its window")
	}
}
