package papaware

import (
	"testing"

	"collsel/internal/coll"
	"collsel/internal/mpi"
	"collsel/internal/netmodel"
	"collsel/internal/pattern"
)

func runAlg(t *testing.T, p int, al coll.Algorithm, count, root int, delays []int64) [][]float64 {
	t.Helper()
	w, err := mpi.NewWorld(mpi.Config{Platform: netmodel.SimCluster(), Size: p})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, p)
	err = w.Run(func(r *mpi.Rank) {
		if delays != nil {
			r.SleepNs(delays[r.ID()])
		}
		data := make([]float64, count)
		for i := range data {
			data[i] = float64(r.ID()*10 + i)
		}
		a := &coll.Args{R: r, Root: root, Data: data, Count: count, Tag: coll.NextTag(r)}
		res, err := al.Run(a)
		if err != nil {
			r.Abort("%v", err)
		}
		out[r.ID()] = res
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func wantSum(p, count, i int) float64 {
	want := 0.0
	for s := 0; s < p; s++ {
		want += float64(s*10 + i)
	}
	return want
}

func TestRegistered(t *testing.T) {
	if len(Algorithms(coll.Reduce)) != 2 {
		t.Error("expected 2 PAP-aware reduce algorithms")
	}
	if len(Algorithms(coll.Allreduce)) != 1 {
		t.Error("expected 1 PAP-aware allreduce algorithm")
	}
	if _, ok := coll.ByName(coll.Reduce, "arrival_linear"); !ok {
		t.Error("arrival_linear not in global registry")
	}
}

func TestArrivalLinearCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 13, 33, 64} {
		for _, root := range []int{0, p - 1} {
			al, _ := coll.ByName(coll.Reduce, "arrival_linear")
			out := runAlg(t, p, al, 5, root, nil)
			for i := 0; i < 5; i++ {
				if out[root][i] != wantSum(p, 5, i) {
					t.Fatalf("p=%d root=%d elem %d: got %g want %g", p, root, i, out[root][i], wantSum(p, 5, i))
				}
			}
		}
	}
}

func TestHierarchicalArrivalCorrect(t *testing.T) {
	// Sizes spanning multiple simulated nodes (SimCluster: 32 cores/node).
	for _, p := range []int{1, 2, 31, 32, 33, 64, 100, 128} {
		for _, root := range []int{0, p / 2, p - 1} {
			al, _ := coll.ByName(coll.Reduce, "hierarchical_arrival")
			out := runAlg(t, p, al, 3, root, nil)
			for i := 0; i < 3; i++ {
				if out[root] == nil || out[root][i] != wantSum(p, 3, i) {
					t.Fatalf("p=%d root=%d elem %d: got %v want %g", p, root, i, out[root], wantSum(p, 3, i))
				}
			}
		}
	}
}

func TestArrivalRedBcastCorrect(t *testing.T) {
	for _, p := range []int{1, 2, 8, 13, 64} {
		al, _ := coll.ByName(coll.Allreduce, "arrival_redbcast")
		out := runAlg(t, p, al, 4, 0, nil)
		for rk := 0; rk < p; rk++ {
			for i := 0; i < 4; i++ {
				if out[rk][i] != wantSum(p, 4, i) {
					t.Fatalf("p=%d rank %d elem %d: got %g", p, rk, i, out[rk][i])
				}
			}
		}
	}
}

func TestCorrectUnderSkewedArrivals(t *testing.T) {
	// The arrival-ordered schedules must stay correct whatever the pattern.
	for _, sh := range pattern.ArtificialShapes() {
		pat := pattern.Generate(sh, 64, 2_000_000, 3)
		for _, name := range []string{"arrival_linear", "hierarchical_arrival"} {
			al, _ := coll.ByName(coll.Reduce, name)
			out := runAlg(t, 64, al, 2, 0, pat.DelaysNs)
			for i := 0; i < 2; i++ {
				if out[0][i] != wantSum(64, 2, i) {
					t.Fatalf("%s under %v: elem %d = %g", name, sh, i, out[0][i])
				}
			}
		}
	}
}

func TestArrivalOrderAbsorbsSkewBetterThanRankOrder(t *testing.T) {
	// With a large-message reduce and a last-delayed pattern, the
	// arrival-ordered root has already reduced p-2 buffers when the last
	// one shows up; the rank-ordered linear reduce must not be faster.
	p := 32
	skew := pattern.Generate(pattern.LastDelayed, p, 3_000_000, 0)
	timeOf := func(name string) int64 {
		al, _ := coll.ByName(coll.Reduce, name)
		w, err := mpi.NewWorld(mpi.Config{Platform: netmodel.SimCluster(), Size: p})
		if err != nil {
			t.Fatal(err)
		}
		var end int64
		err = w.Run(func(r *mpi.Rank) {
			r.SleepNs(skew.DelaysNs[r.ID()])
			data := make([]float64, 4096) // 32 KiB
			a := &coll.Args{R: r, Root: 0, Data: data, Count: 4096, Tag: coll.NextTag(r)}
			if _, err := al.Run(a); err != nil {
				r.Abort("%v", err)
			}
			if r.ID() == 0 {
				end = w.K.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	arrival := timeOf("arrival_linear")
	rankOrder := timeOf("linear")
	if arrival > rankOrder {
		t.Fatalf("arrival-ordered reduce (%d ns) slower than rank-ordered (%d ns) under last-delayed skew", arrival, rankOrder)
	}
}

func TestBadArgs(t *testing.T) {
	w, err := mpi.NewWorld(mpi.Config{Platform: netmodel.SimCluster(), Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	al, _ := coll.ByName(coll.Reduce, "arrival_linear")
	var rerr error
	err = w.Run(func(r *mpi.Rank) {
		a := &coll.Args{R: r, Count: 3, Data: make([]float64, 1), Tag: coll.NextTag(r)}
		_, e := al.Run(a)
		if r.ID() == 0 {
			rerr = e
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rerr == nil {
		t.Fatal("bad args accepted")
	}
}
