// Package papaware implements process-arrival-pattern-aware collective
// algorithms from the paper's related work (Sec. VI) as library
// extensions: schedules that adapt to the order in which processes
// actually arrive, instead of a fixed rank-order schedule.
//
//   - "arrival_linear" reduce: the root consumes child contributions in
//     completion order (MPI_Waitany), overlapping reduction compute with
//     late arrivals — the flat variant of Marendić et al.'s
//     imbalance-robust reduction.
//   - "hierarchical_arrival" reduce: node leaders reduce their node's
//     contributions in arrival order, then a binomial tree combines the
//     leaders — the inter/intra-node split of Parsons & Pai.
//   - "arrival_redbcast" allreduce: arrival-ordered reduce to rank 0
//     followed by a binomial broadcast — a simple PAP-aware allreduce in
//     the spirit of Proficz.
//
// The algorithms register themselves under the same registry as the
// built-in Open MPI set, so every harness (micro-benchmarks, robustness
// studies, the selector) can evaluate them side by side.
package papaware

import (
	"fmt"

	"collsel/internal/coll"
	"collsel/internal/mpi"
)

func init() {
	mustRegister(coll.Algorithm{Coll: coll.Reduce, Name: "arrival_linear", Abbrev: "PAP-Lin", Run: reduceArrivalLinear})
	mustRegister(coll.Algorithm{Coll: coll.Reduce, Name: "hierarchical_arrival", Abbrev: "PAP-Hier", Run: reduceHierarchicalArrival})
	mustRegister(coll.Algorithm{Coll: coll.Allreduce, Name: "arrival_redbcast", Abbrev: "PAP-RB", Run: allreduceArrivalRedBcast})
}

func mustRegister(al coll.Algorithm) {
	if err := coll.Register(al); err != nil {
		panic(fmt.Sprintf("papaware: %v", err))
	}
}

// Algorithms returns the PAP-aware extension set for a collective.
func Algorithms(c coll.Collective) []coll.Algorithm {
	var out []coll.Algorithm
	for _, name := range []string{"arrival_linear", "hierarchical_arrival", "arrival_redbcast"} {
		if al, ok := coll.ByName(c, name); ok {
			out = append(out, al)
		}
	}
	return out
}

// reduceArrivalLinear: non-roots send to the root; the root accumulates
// contributions in the order they complete, so an early buffer never waits
// behind a late lower-ranked one (valid for commutative operators).
func reduceArrivalLinear(a *coll.Args) ([]float64, error) {
	p, me, root := a.R.Size(), a.R.ID(), a.Root
	if err := validateReduceArgs(a); err != nil {
		return nil, err
	}
	if p == 1 {
		return cloneVec(a.Data), nil
	}
	if me != root {
		a.R.Send(root, a.Tag, a.Data, a.Bytes(a.Count))
		return nil, nil
	}
	res := cloneVec(a.Data)
	reqs := make([]*mpi.Request, 0, p-1)
	for s := 0; s < p; s++ {
		if s != root {
			reqs = append(reqs, a.R.Irecv(s, a.Tag))
		}
	}
	remaining := len(reqs)
	for remaining > 0 {
		i, m := mpi.WaitAny(reqs)
		reqs[i] = nil
		remaining--
		accumulateVec(a, res, m.Data)
	}
	return res, nil
}

// reduceHierarchicalArrival: the lowest rank of each node acts as leader;
// node members send to their leader, who reduces in arrival order; leaders
// combine over a binomial tree rooted at the root's leader; the root's
// leader forwards to the root if they differ.
func reduceHierarchicalArrival(a *coll.Args) ([]float64, error) {
	p, me, root := a.R.Size(), a.R.ID(), a.Root
	if err := validateReduceArgs(a); err != nil {
		return nil, err
	}
	if p == 1 {
		return cloneVec(a.Data), nil
	}
	plat := a.R.World().Platform()
	nodeOf := func(r int) int { return plat.NodeOf(r) }
	leaderOf := func(node int) int {
		// Lowest rank on the node that exists in this communicator.
		l := node * plat.CoresPerNode
		if l >= p {
			l = p - 1
		}
		return l
	}
	myNode := nodeOf(me)
	myLeader := leaderOf(myNode)

	// Intra-node phase, arrival-ordered.
	buf := cloneVec(a.Data)
	if me != myLeader {
		a.R.Send(myLeader, a.Tag, buf, a.Bytes(a.Count))
	} else {
		var reqs []*mpi.Request
		for r := myNode * plat.CoresPerNode; r < (myNode+1)*plat.CoresPerNode && r < p; r++ {
			if r != me {
				reqs = append(reqs, a.R.Irecv(r, a.Tag))
			}
		}
		remaining := len(reqs)
		for remaining > 0 {
			i, m := mpi.WaitAny(reqs)
			reqs[i] = nil
			remaining--
			accumulateVec(a, buf, m.Data)
		}
	}

	// Inter-node phase: binomial over leaders, rooted at the root's leader.
	rootLeader := leaderOf(nodeOf(root))
	if me == myLeader {
		nLeaders := (p + plat.CoresPerNode - 1) / plat.CoresPerNode
		myIdx := myNode
		rootIdx := nodeOf(root)
		v := (myIdx - rootIdx + nLeaders) % nLeaders
		interTag := a.Tag + 1
		// Receive from children leaders (arrival-ordered), send to parent.
		var childReqs []*mpi.Request
		for bit := 1; bit < nLeaders; bit <<= 1 {
			if v&bit != 0 {
				break
			}
			cv := v | bit
			if cv < nLeaders {
				child := leaderOf((cv + rootIdx) % nLeaders)
				childReqs = append(childReqs, a.R.Irecv(child, interTag))
			}
		}
		remaining := len(childReqs)
		for remaining > 0 {
			i, m := mpi.WaitAny(childReqs)
			childReqs[i] = nil
			remaining--
			accumulateVec(a, buf, m.Data)
		}
		if v != 0 {
			low := v & (-v)
			parent := leaderOf(((v ^ low) + rootIdx) % nLeaders)
			a.R.Send(parent, interTag, buf, a.Bytes(a.Count))
		} else if me != root {
			a.R.Send(root, a.Tag+2, buf, a.Bytes(a.Count))
			return nil, nil
		} else {
			return buf, nil
		}
		return nil, nil
	}
	if me == root && rootLeader != root {
		m := a.R.Recv(rootLeader, a.Tag+2)
		return m.Data, nil
	}
	return nil, nil
}

// allreduceArrivalRedBcast: arrival-ordered reduce to rank 0, then a
// binomial broadcast back out.
func allreduceArrivalRedBcast(a *coll.Args) ([]float64, error) {
	if err := validateReduceArgs(a); err != nil {
		return nil, err
	}
	sub := *a
	sub.Root = 0
	red, err := reduceArrivalLinear(&sub)
	if err != nil {
		return nil, err
	}
	bcastAlg, ok := coll.ByID(coll.Bcast, 6)
	if !ok {
		return nil, fmt.Errorf("papaware: binomial bcast missing")
	}
	bc := *a
	bc.Root = 0
	bc.Data = red
	bc.Tag = a.Tag + 4096
	return bcastAlg.Run(&bc)
}

// --- small local helpers (the coll package keeps its own private) -----------

func validateReduceArgs(a *coll.Args) error {
	if a.Count <= 0 {
		return fmt.Errorf("papaware: count must be positive")
	}
	if len(a.Data) != a.Count {
		return fmt.Errorf("papaware: rank %d data length %d != count %d", a.R.ID(), len(a.Data), a.Count)
	}
	if a.Root < 0 || a.Root >= a.R.Size() {
		return fmt.Errorf("papaware: root %d out of range", a.Root)
	}
	return nil
}

func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

func accumulateVec(a *coll.Args, dst, src []float64) {
	for i := range src {
		dst[i] += src[i]
	}
	plat := a.R.World().Platform()
	ns := int64(plat.ReduceNsPerByte * float64(a.Bytes(len(src))))
	if ns > 0 {
		a.R.Compute(ns)
	}
}
