// Package tuning persists algorithm selections as a tuning table, the
// library-facing artifact of the paper's methodology: once the robust
// algorithm per (machine, collective, message-size range, communicator
// size) is known, an MPI library consults a table like this instead of its
// fixed decision rules. The format mirrors the role of Open MPI's dynamic
// rules file, expressed as JSON for tooling friendliness.
package tuning

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"collsel/internal/coll"
)

// Rule selects an algorithm for one (collective, size range) slot.
type Rule struct {
	// Collective is the lowercase collective name.
	Collective string `json:"collective"`
	// MinBytes..MaxBytes is the inclusive message-size range the rule
	// covers; MaxBytes 0 means unbounded above.
	MinBytes int `json:"min_bytes"`
	MaxBytes int `json:"max_bytes,omitempty"`
	// Algorithm is the canonical algorithm name.
	Algorithm string `json:"algorithm"`
	// Score is the robustness score the selection was based on (optional,
	// informational).
	Score float64 `json:"score,omitempty"`
}

// Table is a per-machine set of rules.
type Table struct {
	// Machine names the platform the table was tuned on.
	Machine string `json:"machine"`
	// Procs is the communicator size the measurements used.
	Procs int `json:"procs"`
	// Rules are matched most-specific (narrowest range) first.
	Rules []Rule `json:"rules"`
}

// Add inserts or replaces the rule for (collective, minBytes, maxBytes).
func (t *Table) Add(r Rule) error {
	if _, ok := coll.CollectiveByName(r.Collective); !ok {
		return fmt.Errorf("tuning: unknown collective %q", r.Collective)
	}
	c, _ := coll.CollectiveByName(r.Collective)
	if _, ok := coll.ByName(c, r.Algorithm); !ok {
		return fmt.Errorf("tuning: unknown %s algorithm %q", r.Collective, r.Algorithm)
	}
	if r.MinBytes < 0 || (r.MaxBytes != 0 && r.MaxBytes < r.MinBytes) {
		return fmt.Errorf("tuning: invalid size range [%d, %d]", r.MinBytes, r.MaxBytes)
	}
	for i, old := range t.Rules {
		if old.Collective == r.Collective && old.MinBytes == r.MinBytes && old.MaxBytes == r.MaxBytes {
			t.Rules[i] = r
			return nil
		}
	}
	t.Rules = append(t.Rules, r)
	t.sort()
	return nil
}

func (t *Table) sort() {
	sort.SliceStable(t.Rules, func(i, j int) bool {
		a, b := t.Rules[i], t.Rules[j]
		if a.Collective != b.Collective {
			return a.Collective < b.Collective
		}
		if a.MinBytes != b.MinBytes {
			return a.MinBytes < b.MinBytes
		}
		return width(a) < width(b)
	})
}

func width(r Rule) int {
	if r.MaxBytes == 0 {
		return 1 << 62
	}
	return r.MaxBytes - r.MinBytes
}

// Lookup returns the algorithm for a collective and message size, matching
// the narrowest covering rule. ok is false when no rule covers the query.
func (t *Table) Lookup(c coll.Collective, msgBytes int) (coll.Algorithm, bool) {
	bestW := 1<<62 + 1
	var best *Rule
	for i := range t.Rules {
		r := &t.Rules[i]
		if r.Collective != c.String() {
			continue
		}
		if msgBytes < r.MinBytes || (r.MaxBytes != 0 && msgBytes > r.MaxBytes) {
			continue
		}
		if w := width(*r); w < bestW {
			bestW = w
			best = r
		}
	}
	if best == nil {
		return coll.Algorithm{}, false
	}
	al, ok := coll.ByName(c, best.Algorithm)
	return al, ok
}

// Validate checks every rule resolves against the registry.
func (t *Table) Validate() error {
	for _, r := range t.Rules {
		c, ok := coll.CollectiveByName(r.Collective)
		if !ok {
			return fmt.Errorf("tuning: unknown collective %q", r.Collective)
		}
		if _, ok := coll.ByName(c, r.Algorithm); !ok {
			return fmt.Errorf("tuning: unknown %s algorithm %q", r.Collective, r.Algorithm)
		}
	}
	return nil
}

// Save writes the table as indented JSON, atomically: a temp file in the
// destination directory, then rename. A crash mid-write leaves either the
// old table or the new one on disk, never a torn file — these tables are
// read by MPI jobs at startup, where a half-written file is a silent
// mis-selection, not an error.
func (t *Table) Save(path string) error {
	t.sort()
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tuning-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads and validates a table.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("tuning: %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.sort()
	return &t, nil
}
