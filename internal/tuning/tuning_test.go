package tuning

import (
	"os"
	"path/filepath"
	"testing"

	"collsel/internal/coll"
)

func TestAddAndLookup(t *testing.T) {
	tb := &Table{Machine: "Hydra", Procs: 256}
	rules := []Rule{
		{Collective: "alltoall", MinBytes: 0, MaxBytes: 768, Algorithm: "bruck"},
		{Collective: "alltoall", MinBytes: 769, MaxBytes: 131072, Algorithm: "basic_linear"},
		{Collective: "alltoall", MinBytes: 131073, Algorithm: "pairwise"},
		{Collective: "reduce", MinBytes: 0, Algorithm: "binomial"},
	}
	for _, r := range rules {
		if err := tb.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		c    coll.Collective
		sz   int
		want string
	}{
		{coll.Alltoall, 8, "bruck"},
		{coll.Alltoall, 768, "bruck"},
		{coll.Alltoall, 769, "basic_linear"},
		{coll.Alltoall, 32768, "basic_linear"},
		{coll.Alltoall, 1 << 20, "pairwise"},
		{coll.Reduce, 12345, "binomial"},
	}
	for _, c := range cases {
		al, ok := tb.Lookup(c.c, c.sz)
		if !ok || al.Name != c.want {
			t.Errorf("Lookup(%v, %d) = %v/%v, want %s", c.c, c.sz, al.Name, ok, c.want)
		}
	}
	if _, ok := tb.Lookup(coll.Allreduce, 8); ok {
		t.Error("lookup without rule succeeded")
	}
}

func TestNarrowestRuleWins(t *testing.T) {
	tb := &Table{}
	if err := tb.Add(Rule{Collective: "reduce", MinBytes: 0, Algorithm: "binomial"}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Add(Rule{Collective: "reduce", MinBytes: 1024, MaxBytes: 2048, Algorithm: "binary"}); err != nil {
		t.Fatal(err)
	}
	al, _ := tb.Lookup(coll.Reduce, 1500)
	if al.Name != "binary" {
		t.Errorf("narrow rule not preferred: got %s", al.Name)
	}
	al, _ = tb.Lookup(coll.Reduce, 8)
	if al.Name != "binomial" {
		t.Errorf("fallback broken: got %s", al.Name)
	}
}

func TestAddReplacesSameSlot(t *testing.T) {
	tb := &Table{}
	_ = tb.Add(Rule{Collective: "reduce", MinBytes: 0, MaxBytes: 64, Algorithm: "binomial"})
	_ = tb.Add(Rule{Collective: "reduce", MinBytes: 0, MaxBytes: 64, Algorithm: "binary"})
	if len(tb.Rules) != 1 {
		t.Fatalf("duplicate slot not replaced: %d rules", len(tb.Rules))
	}
	if tb.Rules[0].Algorithm != "binary" {
		t.Error("replacement lost")
	}
}

func TestAddRejectsBadRules(t *testing.T) {
	tb := &Table{}
	bad := []Rule{
		{Collective: "nonsense", Algorithm: "binomial"},
		{Collective: "reduce", Algorithm: "nonsense"},
		{Collective: "reduce", Algorithm: "binomial", MinBytes: -1},
		{Collective: "reduce", Algorithm: "binomial", MinBytes: 100, MaxBytes: 50},
	}
	for i, r := range bad {
		if err := tb.Add(r); err == nil {
			t.Errorf("rule %d accepted", i)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hydra.json")
	tb := &Table{Machine: "Hydra", Procs: 128}
	_ = tb.Add(Rule{Collective: "alltoall", MinBytes: 0, MaxBytes: 1024, Algorithm: "bruck", Score: 1.1})
	_ = tb.Add(Rule{Collective: "alltoall", MinBytes: 1025, Algorithm: "pairwise"})
	if err := tb.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Machine != "Hydra" || got.Procs != 128 || len(got.Rules) != 2 {
		t.Fatalf("%+v", got)
	}
	al, ok := got.Lookup(coll.Alltoall, 100)
	if !ok || al.Name != "bruck" {
		t.Error("loaded table lookup broken")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := writeFile(path, `{"rules": [{"collective": "zap", "algorithm": "x"}]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("invalid table loaded")
	}
	if err := writeFile(path, `not json`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("non-JSON loaded")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestSaveAtomicOverwrite pins the temp+rename contract: overwriting an
// existing table never leaves a torn file (a reader sees the old table or
// the new one, nothing between) and no temp droppings survive the write.
func TestSaveAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	old := &Table{Machine: "Hydra", Procs: 64}
	_ = old.Add(Rule{Collective: "alltoall", MinBytes: 0, Algorithm: "bruck"})
	if err := old.Save(path); err != nil {
		t.Fatal(err)
	}
	nw := &Table{Machine: "Hydra", Procs: 128}
	_ = nw.Add(Rule{Collective: "alltoall", MinBytes: 0, Algorithm: "pairwise"})
	if err := nw.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Procs != 128 || got.Rules[0].Algorithm != "pairwise" {
		t.Fatalf("overwrite not applied: %+v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "rules.json" {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	// The world-readable mode survives the temp file's restrictive default.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("mode %v, want 0644", info.Mode().Perm())
	}
}
