package core

import (
	"math"
	"testing"
	"testing/quick"

	"collsel/internal/coll"
)

// testMatrix builds a small 3-pattern x 3-algorithm matrix:
//
//	            algA   algB   algC
//	no_delay     100    150    300
//	last_delayed 400    160    310
//	ascending    200    150    320
func testMatrix() *Matrix {
	algs := []coll.Algorithm{
		{Coll: coll.Reduce, ID: 1, Name: "algA"},
		{Coll: coll.Reduce, ID: 2, Name: "algB"},
		{Coll: coll.Reduce, ID: 3, Name: "algC"},
	}
	m := NewMatrix(coll.Reduce, []string{"no_delay", "last_delayed", "ascending"}, algs)
	vals := [][]float64{
		{100, 150, 300},
		{400, 160, 310},
		{200, 150, 320},
	}
	for i := range vals {
		for j := range vals[i] {
			m.Set(i, j, vals[i][j])
		}
	}
	return m
}

func TestValidateCatchesHoles(t *testing.T) {
	m := NewMatrix(coll.Reduce, []string{"no_delay"}, []coll.Algorithm{{Name: "x"}})
	if err := m.Validate(); err == nil {
		t.Fatal("NaN matrix validated")
	}
	m.Set(0, 0, 5)
	if err := m.Validate(); err != nil {
		t.Fatalf("filled matrix rejected: %v", err)
	}
	m.Set(0, 0, -1)
	if err := m.Validate(); err == nil {
		t.Fatal("negative value validated")
	}
	empty := &Matrix{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty matrix validated")
	}
}

func TestGoodAlgorithms(t *testing.T) {
	m := testMatrix()
	// Row 0: best 100; within 5% = only algA.
	good := m.GoodAlgorithms(0)
	if !good[0] || good[1] || good[2] {
		t.Errorf("row 0 classes: %v", good)
	}
	// Row 2: best 150 (algB); 5% bound = 157.5; algA at 200 is out.
	good = m.GoodAlgorithms(2)
	if good[0] || !good[1] || good[2] {
		t.Errorf("row 2 classes: %v", good)
	}
}

func TestGoodAlgorithmsTie(t *testing.T) {
	algs := []coll.Algorithm{{Name: "a"}, {Name: "b"}}
	m := NewMatrix(coll.Alltoall, []string{"no_delay"}, algs)
	m.Set(0, 0, 100)
	m.Set(0, 1, 104.9)
	good := m.GoodAlgorithms(0)
	if !good[0] || !good[1] {
		t.Errorf("within-5%% tie not both good: %v", good)
	}
}

func TestOptimizationPotential(t *testing.T) {
	m := testMatrix()
	cells, err := m.OptimizationPotential()
	if err != nil {
		t.Fatal(err)
	}
	// no_delay winner is algA.
	// Row no_delay: best algA, ratio 1.
	if cells[0].Best.Name != "algA" || cells[0].Ratio != 1 {
		t.Errorf("no_delay cell: %+v", cells[0])
	}
	// Row last_delayed: best algB (160); no-delay winner algA costs 400
	// under this pattern; ratio 160/400 = 0.4.
	if cells[1].Best.Name != "algB" || math.Abs(cells[1].Ratio-0.4) > 1e-12 {
		t.Errorf("last_delayed cell: %+v", cells[1])
	}
	// Missing no_delay row.
	m2 := NewMatrix(coll.Reduce, []string{"ascending"}, m.Algorithms)
	m2.Set(0, 0, 1)
	m2.Set(0, 1, 1)
	m2.Set(0, 2, 1)
	if _, err := m2.OptimizationPotential(); err == nil {
		t.Error("missing no_delay accepted")
	}
}

func TestRobustness(t *testing.T) {
	m := testMatrix()
	rows, cells, err := m.Robustness()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0] != "last_delayed" {
		t.Fatalf("rows %v", rows)
	}
	// algA under last_delayed: 400/100-1 = 3.0 -> Slower.
	if c := cells[0][0]; math.Abs(c.Normalized-3) > 1e-12 || c.Class != Slower {
		t.Errorf("algA last_delayed: %+v", c)
	}
	// algB under last_delayed: 160/150-1 = 0.067 -> Neutral.
	if c := cells[0][1]; c.Class != Neutral {
		t.Errorf("algB last_delayed: %+v", c)
	}
	// Synthetic Faster case.
	m.Set(1, 2, 100) // algC under last_delayed: 100/300-1 = -0.667
	_, cells, _ = m.Robustness()
	if c := cells[0][2]; c.Class != Faster {
		t.Errorf("algC should be Faster: %+v", c)
	}
}

func TestNormalizedRows(t *testing.T) {
	m := testMatrix()
	n := m.Normalized()
	for i := range n {
		min := math.Inf(1)
		for _, v := range n[i] {
			if v < min {
				min = v
			}
		}
		if math.Abs(min-1) > 1e-12 {
			t.Errorf("row %d min %g, want 1", i, min)
		}
	}
	if math.Abs(n[1][0]-2.5) > 1e-12 { // 400/160
		t.Errorf("n[1][0] = %g", n[1][0])
	}
}

func TestAvgNormalizedAndSelection(t *testing.T) {
	m := testMatrix()
	avg := m.AvgNormalized()
	// algB normalized: 1.5, 1.0, 1.0 -> 1.1667
	if math.Abs(avg[1]-(1.5+1+1)/3) > 1e-12 {
		t.Errorf("algB avg %g", avg[1])
	}
	choices, err := m.SelectRobust()
	if err != nil {
		t.Fatal(err)
	}
	if choices[0].Algorithm.Name != "algB" {
		t.Errorf("selected %s, want algB (robust overall)", choices[0].Algorithm.Name)
	}
	// The no-delay choice differs: algA wins the synchronized benchmark.
	nd, err := m.NoDelayChoice()
	if err != nil {
		t.Fatal(err)
	}
	if nd.Name != "algA" {
		t.Errorf("no-delay choice %s", nd.Name)
	}
	// Excluding the row where algA collapses flips the selection back.
	choices, err = m.SelectRobust("last_delayed")
	if err != nil {
		t.Fatal(err)
	}
	if choices[0].Algorithm.Name == "algB" {
		// algA: (1.0 + 1.333)/2 = 1.167 vs algB (1.5+1)/2 = 1.25
		t.Errorf("exclusion not honored: %+v", choices)
	}
}

func TestPredictRuntime(t *testing.T) {
	m := testMatrix()
	preds, err := m.PredictRuntime(2.0, 1000) // 1000 calls, values are ns
	if err != nil {
		t.Fatal(err)
	}
	// algA: no-delay 2.0 + 1000*100ns = 2.0 + 0.0001 s
	if math.Abs(preds[0].NoDelaySec-2.0001) > 1e-9 {
		t.Errorf("algA no-delay prediction %g", preds[0].NoDelaySec)
	}
	avgA := (100.0 + 400 + 200) / 3
	if math.Abs(preds[0].AvgSec-(2.0+1000*avgA/1e9)) > 1e-9 {
		t.Errorf("algA avg prediction %g", preds[0].AvgSec)
	}
	// Exclusion removes a row from the average.
	preds, err = m.PredictRuntime(0, 1, "last_delayed")
	if err != nil {
		t.Fatal(err)
	}
	wantAvg := (100.0 + 200) / 2 / 1e9
	if math.Abs(preds[0].AvgSec-wantAvg) > 1e-15 {
		t.Errorf("excluded avg %g want %g", preds[0].AvgSec, wantAvg)
	}
}

func TestPatternIndex(t *testing.T) {
	m := testMatrix()
	if m.PatternIndex("ascending") != 2 || m.PatternIndex("nope") != -1 {
		t.Error("PatternIndex broken")
	}
}

func TestSelectionScoreInvariantProperty(t *testing.T) {
	// Property: the selected algorithm's score is <= every other score, and
	// scaling an entire row leaves the selection unchanged (scores are
	// row-normalized).
	f := func(raw [9]uint16, scale uint8) bool {
		algs := []coll.Algorithm{{Name: "a"}, {Name: "b"}, {Name: "c"}}
		m := NewMatrix(coll.Alltoall, []string{"no_delay", "p1", "p2"}, algs)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m.Set(i, j, float64(raw[i*3+j])+1)
			}
		}
		c1, err := m.SelectRobust()
		if err != nil {
			return false
		}
		for i := 1; i < len(c1); i++ {
			if c1[i].Score < c1[0].Score {
				return false
			}
		}
		s := float64(scale) + 2
		for j := 0; j < 3; j++ {
			m.Set(1, j, m.ValueNs[1][j]*s)
		}
		c2, err := m.SelectRobust()
		if err != nil {
			return false
		}
		return c1[0].Algorithm.Name == c2[0].Algorithm.Name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRobustnessClassString(t *testing.T) {
	if Faster.String() != "faster" || Neutral.String() != "neutral" || Slower.String() != "slower" {
		t.Error("class names")
	}
}

func TestRowCopyIsolated(t *testing.T) {
	m := testMatrix()
	r := m.Row(0)
	r[0] = -999
	if m.ValueNs[0][0] == -999 {
		t.Error("Row returned a live reference")
	}
}
