// Package core implements the paper's contribution: arrival-pattern-aware
// selection of MPI collective algorithms.
//
// The central object is the Matrix: the measured mean last-delay (d̂) of
// every algorithm of one collective under every arrival pattern, for a
// fixed message size, process count and machine. On top of it the package
// provides the analyses of the paper's figures:
//
//   - the "good algorithm" classification — within 5% of the row's fastest
//     (Fig. 5, light blue vs. light red);
//   - the relative-to-no-delay-winner view (Fig. 4): how much faster the
//     per-pattern best algorithm is than the algorithm a conventional
//     synchronized micro-benchmark would have chosen;
//   - robustness normalization d̂^k / d̂^no-delay - 1 with the ±25%
//     green/gray/red classes (Fig. 6);
//   - row-normalized runtimes and the per-algorithm average normalized
//     score (Fig. 8), whose minimizer is the paper's selected algorithm;
//   - the application-runtime predictor (Fig. 9).
package core

import (
	"fmt"
	"math"

	"collsel/internal/coll"
	"collsel/internal/stats"
)

// GoodTolerance is the paper's "indistinguishable from fastest" margin.
const GoodTolerance = 0.05

// RobustThreshold is the ±25% margin of the Fig. 6 classification.
const RobustThreshold = 0.25

// Matrix holds mean last-delay measurements (ns): Value[i][j] is pattern i,
// algorithm j.
type Matrix struct {
	Collective coll.Collective
	// MsgBytes is the benchmarked message size (per pair for Alltoall).
	MsgBytes int
	Procs    int
	Machine  string
	// Patterns are the row labels; by convention "no_delay" is a row when
	// the analysis needs it (Fig. 4/6 do, Fig. 8 includes it as a row too).
	Patterns   []string
	Algorithms []coll.Algorithm
	// ValueNs[i][j] is the mean d̂ of algorithm j under pattern i.
	ValueNs [][]float64
}

// NewMatrix allocates a Matrix with the given labels.
func NewMatrix(c coll.Collective, patterns []string, algs []coll.Algorithm) *Matrix {
	m := &Matrix{
		Collective: c,
		Patterns:   append([]string(nil), patterns...),
		Algorithms: append([]coll.Algorithm(nil), algs...),
		ValueNs:    make([][]float64, len(patterns)),
	}
	for i := range m.ValueNs {
		m.ValueNs[i] = make([]float64, len(algs))
		for j := range m.ValueNs[i] {
			m.ValueNs[i][j] = math.NaN()
		}
	}
	return m
}

// Validate checks the matrix is fully populated with positive values.
func (m *Matrix) Validate() error {
	if len(m.Patterns) == 0 || len(m.Algorithms) == 0 {
		return fmt.Errorf("core: empty matrix")
	}
	for i, row := range m.ValueNs {
		if len(row) != len(m.Algorithms) {
			return fmt.Errorf("core: row %d has %d entries, want %d", i, len(row), len(m.Algorithms))
		}
		for j, v := range row {
			if math.IsNaN(v) || v <= 0 {
				return fmt.Errorf("core: missing/invalid measurement at (%s, %s): %v",
					m.Patterns[i], m.Algorithms[j].Name, v)
			}
		}
	}
	return nil
}

// PruneFailed returns a matrix with every algorithm column that contains a
// missing or invalid measurement (NaN or <= 0) removed, plus the removed
// algorithms in column order. It is the bridge from a degraded grid build
// to the selection analyses, which require a fully populated matrix. When
// nothing is missing the receiver itself is returned unchanged.
func (m *Matrix) PruneFailed() (*Matrix, []coll.Algorithm) {
	var keep []int
	var dropped []coll.Algorithm
	for j, al := range m.Algorithms {
		ok := true
		for i := range m.Patterns {
			if v := m.ValueNs[i][j]; math.IsNaN(v) || v <= 0 {
				ok = false
				break
			}
		}
		if ok {
			keep = append(keep, j)
		} else {
			dropped = append(dropped, al)
		}
	}
	if len(dropped) == 0 {
		return m, nil
	}
	algs := make([]coll.Algorithm, len(keep))
	for k, j := range keep {
		algs[k] = m.Algorithms[j]
	}
	out := NewMatrix(m.Collective, m.Patterns, algs)
	out.MsgBytes, out.Procs, out.Machine = m.MsgBytes, m.Procs, m.Machine
	for i := range m.Patterns {
		for k, j := range keep {
			out.ValueNs[i][k] = m.ValueNs[i][j]
		}
	}
	return out, dropped
}

// PatternIndex returns the row index of a pattern name, or -1.
func (m *Matrix) PatternIndex(name string) int {
	for i, p := range m.Patterns {
		if p == name {
			return i
		}
	}
	return -1
}

// Set stores a measurement.
func (m *Matrix) Set(patternIdx, algIdx int, valueNs float64) {
	m.ValueNs[patternIdx][algIdx] = valueNs
}

// Row returns a copy of one pattern's measurements.
func (m *Matrix) Row(i int) []float64 {
	return append([]float64(nil), m.ValueNs[i]...)
}

// --- Fig. 5: good-algorithm classification ---------------------------------

// GoodAlgorithms returns, for row i, a boolean per algorithm: true when it
// is within GoodTolerance of the row's fastest (the light-blue boxes).
func (m *Matrix) GoodAlgorithms(i int) []bool {
	row := m.ValueNs[i]
	best := row[stats.MinIdx(row)]
	out := make([]bool, len(row))
	for j, v := range row {
		out[j] = v <= best*(1+GoodTolerance)
	}
	return out
}

// --- Fig. 4: optimization potential vs. the no-delay choice -----------------

// PotentialCell is one Fig. 4 cell: the best algorithm under a pattern and
// its runtime relative to the algorithm the no-delay benchmark would pick.
type PotentialCell struct {
	Pattern string
	// Best is the fastest algorithm under this pattern.
	Best coll.Algorithm
	// Ratio is d̂(best under pattern) / d̂(no-delay winner, measured under
	// this same pattern). 1.0 means the no-delay choice is already optimal;
	// 0.3 means the pattern-aware choice needs only 30% of the time.
	Ratio float64
}

// OptimizationPotential computes the Fig. 4 view. The matrix must contain a
// "no_delay" row.
func (m *Matrix) OptimizationPotential() ([]PotentialCell, error) {
	nd := m.PatternIndex("no_delay")
	if nd < 0 {
		return nil, fmt.Errorf("core: matrix has no no_delay row")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	winner := stats.MinIdx(m.ValueNs[nd])
	out := make([]PotentialCell, 0, len(m.Patterns))
	for i := range m.Patterns {
		row := m.ValueNs[i]
		bestIdx := stats.MinIdx(row)
		out = append(out, PotentialCell{
			Pattern: m.Patterns[i],
			Best:    m.Algorithms[bestIdx],
			Ratio:   row[bestIdx] / row[winner],
		})
	}
	return out, nil
}

// --- Fig. 6: robustness classes ---------------------------------------------

// RobustnessClass buckets an algorithm's reaction to a pattern.
type RobustnessClass int

const (
	// Faster: at least 25% faster than its own no-delay case (green).
	Faster RobustnessClass = iota
	// Neutral: within ±25% (gray).
	Neutral
	// Slower: at least 25% slower (red).
	Slower
)

func (c RobustnessClass) String() string {
	switch c {
	case Faster:
		return "faster"
	case Slower:
		return "slower"
	default:
		return "neutral"
	}
}

// RobustnessCell is one Fig. 6 cell.
type RobustnessCell struct {
	// Normalized is d̂^pattern / d̂^no-delay - 1; negative values mean the
	// algorithm absorbed skew.
	Normalized float64
	Class      RobustnessClass
}

// Robustness computes the Fig. 6 normalization for every non-no-delay row.
// Row order matches Patterns with the no_delay row removed.
func (m *Matrix) Robustness() (rows []string, cells [][]RobustnessCell, err error) {
	nd := m.PatternIndex("no_delay")
	if nd < 0 {
		return nil, nil, fmt.Errorf("core: matrix has no no_delay row")
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	base := m.ValueNs[nd]
	for i := range m.Patterns {
		if i == nd {
			continue
		}
		rows = append(rows, m.Patterns[i])
		row := make([]RobustnessCell, len(m.Algorithms))
		for j := range m.Algorithms {
			norm := m.ValueNs[i][j]/base[j] - 1
			cls := Neutral
			if norm <= -RobustThreshold {
				cls = Faster
			} else if norm >= RobustThreshold {
				cls = Slower
			}
			row[j] = RobustnessCell{Normalized: norm, Class: cls}
		}
		cells = append(cells, row)
	}
	return rows, cells, nil
}

// --- Fig. 8 + selection: normalized matrix and robustness score -------------

// Normalized returns the row-normalized matrix (each row divided by its
// minimum, fastest = 1.0), the Fig. 8 heatmap content.
func (m *Matrix) Normalized() [][]float64 {
	out := make([][]float64, len(m.ValueNs))
	for i, row := range m.ValueNs {
		out[i] = stats.Normalize(row)
	}
	return out
}

// AvgNormalized computes the per-algorithm mean of the row-normalized
// values over all rows except those named in exclude — the "Avg" row of
// Fig. 8, the paper's robustness score.
func (m *Matrix) AvgNormalized(exclude ...string) []float64 {
	skip := map[string]bool{}
	for _, e := range exclude {
		skip[e] = true
	}
	norm := m.Normalized()
	out := make([]float64, len(m.Algorithms))
	n := 0
	for i, row := range norm {
		if skip[m.Patterns[i]] {
			continue
		}
		n++
		for j, v := range row {
			out[j] += v
		}
	}
	if n > 0 {
		for j := range out {
			out[j] /= float64(n)
		}
	}
	return out
}

// Choice is a ranked algorithm with its robustness score.
type Choice struct {
	Algorithm coll.Algorithm
	// Score is the average normalized runtime across patterns (1.0 would be
	// an algorithm that is the fastest under every pattern).
	Score float64
}

// SelectRobust ranks the algorithms by the paper's criterion — smallest
// average normalized runtime across arrival patterns — and returns them
// best-first. Patterns named in exclude (e.g. a traced application
// scenario that would not be available in practice) are left out of the
// score.
func (m *Matrix) SelectRobust(exclude ...string) ([]Choice, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	avg := m.AvgNormalized(exclude...)
	out := make([]Choice, len(m.Algorithms))
	for j, al := range m.Algorithms {
		out[j] = Choice{Algorithm: al, Score: avg[j]}
	}
	// Stable insertion sort by score (small N).
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].Score < out[k-1].Score; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out, nil
}

// NoDelayChoice returns the algorithm a conventional synchronized
// micro-benchmark would select (fastest in the no_delay row).
func (m *Matrix) NoDelayChoice() (coll.Algorithm, error) {
	nd := m.PatternIndex("no_delay")
	if nd < 0 {
		return coll.Algorithm{}, fmt.Errorf("core: matrix has no no_delay row")
	}
	return m.Algorithms[stats.MinIdx(m.ValueNs[nd])], nil
}

// --- Fig. 9: application runtime prediction ---------------------------------

// Prediction is an estimated application runtime for one algorithm.
type Prediction struct {
	Algorithm coll.Algorithm
	// NoDelaySec assumes every collective costs its synchronized
	// micro-benchmark time (the conventional, misleading estimate).
	NoDelaySec float64
	// AvgSec uses the average runtime across arrival patterns instead (the
	// paper's estimate, which matches the measured application).
	AvgSec float64
}

// PredictRuntime implements the Fig. 9 estimator: application runtime =
// compute time + nCalls * expected collective time, under both the
// no-delay and the pattern-averaged expectation. exclude lists pattern
// rows (e.g. "ft_scenario") to keep out of the average, matching the
// paper's "Avg (excl. FT-Sce.)".
func (m *Matrix) PredictRuntime(computeSec float64, nCalls int, exclude ...string) ([]Prediction, error) {
	nd := m.PatternIndex("no_delay")
	if nd < 0 {
		return nil, fmt.Errorf("core: matrix has no no_delay row")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	skip := map[string]bool{}
	for _, e := range exclude {
		skip[e] = true
	}
	out := make([]Prediction, len(m.Algorithms))
	for j, al := range m.Algorithms {
		var sum float64
		n := 0
		for i := range m.Patterns {
			if skip[m.Patterns[i]] {
				continue
			}
			sum += m.ValueNs[i][j]
			n++
		}
		avg := sum / float64(n)
		out[j] = Prediction{
			Algorithm:  al,
			NoDelaySec: computeSec + float64(nCalls)*m.ValueNs[nd][j]/1e9,
			AvgSec:     computeSec + float64(nCalls)*avg/1e9,
		}
	}
	return out, nil
}
