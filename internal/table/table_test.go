package table

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("long-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	// All rows align: the "value" column starts at the same offset.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") {
		t.Errorf("row 1 misaligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[3][idx:], "22") {
		t.Errorf("row 2 misaligned:\n%s", out)
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tb := New("a", "b", "c")
	tb.AddRow("only")
	if out := tb.String(); !strings.Contains(out, "only") {
		t.Fatal("short row lost")
	}
}

func TestNs(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{5, "5 ns"},
		{1500, "1.50 us"},
		{2_500_000, "2.500 ms"},
		{3_200_000_000, "3.200 s"},
	}
	for _, c := range cases {
		if got := Ns(c.in); got != c.want {
			t.Errorf("Ns(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		in   int
		want string
	}{
		{2, "2 B"},
		{1024, "1 KiB"},
		{32768, "32 KiB"},
		{1048576, "1 MiB"},
		{1000, "1000 B"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestMark(t *testing.T) {
	if Mark("x", true, false) != "*x*" {
		t.Error("highlight mark")
	}
	if Mark("x", false, true) != "!x!" {
		t.Error("flag mark")
	}
	if Mark("x", false, false) != " x " {
		t.Error("plain mark")
	}
	// Highlight wins over flag.
	if Mark("x", true, true) != "*x*" {
		t.Error("precedence")
	}
}
