// Package table renders the experiment results as aligned ASCII tables and
// annotated heatmaps, the textual equivalent of the paper's figures.
package table

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// New creates a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with column alignment and a separator line.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Ns formats a duration given in nanoseconds with an adaptive unit.
func Ns(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3f s", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3f ms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2f us", ns/1e3)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}

// Bytes formats a message size the way the paper labels its axes.
func Bytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%d MiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%d KiB", n>>10)
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Mark wraps a cell value with the paper's color-coding conventions,
// rendered as ASCII: '*' for highlighted (blue/green) cells, '!' for
// flagged (red) cells, plain otherwise.
func Mark(s string, highlight, flag bool) string {
	switch {
	case highlight:
		return "*" + s + "*"
	case flag:
		return "!" + s + "!"
	default:
		return " " + s + " "
	}
}
