// Package prand recycles seeded math/rand generators. A generator's state
// block is ~5KB (the rngSource feedback register), and the simulation stack
// creates short-lived, locally-seeded generators at high rate: pattern
// materialization, noise-model setup, clock-ensemble construction. Pooling
// the state blocks removes that allocation churn without changing a single
// drawn value: (*rand.Rand).Seed fully re-derives the generator state from
// the seed, so a recycled generator is stream-identical to a fresh
// rand.New(rand.NewSource(seed)).
package prand

import (
	"math/rand"
	"sync"
)

var pool sync.Pool // *rand.Rand

// Get returns a generator seeded with seed. The stream is bit-identical to
// rand.New(rand.NewSource(seed)). Callers that finish drawing should hand
// the generator back via Put; keeping it is also fine (it just is not
// recycled).
func Get(seed int64) *rand.Rand {
	if v := pool.Get(); v != nil {
		g := v.(*rand.Rand)
		g.Seed(seed)
		return g
	}
	return rand.New(rand.NewSource(seed))
}

// Put recycles g for a future Get. g must not be used afterwards.
func Put(g *rand.Rand) { pool.Put(g) }
