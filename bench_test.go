// Benchmarks regenerating every table and figure of the paper, one bench
// per experiment. Each iteration executes the figure's full experiment
// driver at a laptop-tractable scale (override with COLLSEL_BENCH_PROCS;
// the paper's own scale is 1024 = 32x32 and can be reproduced with the
// cmd/ tools).
//
// The interesting output of these benchmarks is not ns/op (that is
// simulator wall time) but the custom metrics: simulated collective
// runtimes, selection outcomes and prediction errors, reported via
// b.ReportMetric. The textual figures themselves are produced by the cmd/
// tools (see EXPERIMENTS.md).
package collsel_test

import (
	"os"
	"strconv"
	"testing"

	"collsel"
	"collsel/internal/apps/ft"
	"collsel/internal/coll"
	"collsel/internal/core"
	"collsel/internal/expt"
	"collsel/internal/netmodel"
)

// benchProcs returns the rank count for benchmark experiments.
func benchProcs() int {
	if s := os.Getenv("COLLSEL_BENCH_PROCS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 1 {
			return v
		}
	}
	return 64
}

// benchClass returns an FT geometry that preserves the paper's 32768 B
// per-pair Alltoall message size at the chosen rank count.
func benchClass(procs int) ft.Class {
	// 16*N/p^2 = 32768  =>  N = 2048 * p^2
	n := 2048 * procs * procs
	nx := 256
	for nx*nx*nx < n {
		nx *= 2
	}
	// Pick NY, NZ to hit N exactly with power-of-two factors.
	ny, nz := nx, nx
	for nx*ny*nz > n {
		if nz > 1 {
			nz /= 2
		} else {
			ny /= 2
		}
	}
	return ft.Class{Name: "bench", NX: nx, NY: ny, NZ: nz, Iterations: 6}
}

// --- Fig. 1: FT arrival-pattern trace ----------------------------------------

func BenchmarkFig1_FTTraceGalileo100(b *testing.B) {
	procs := benchProcs()
	for i := 0; i < b.N; i++ {
		tr := collsel.NewTracer(procs)
		al, _ := collsel.AlgorithmByID(collsel.Alltoall, 2)
		res, err := collsel.RunFT(collsel.FTConfig{
			Platform:    collsel.Galileo100(),
			Procs:       procs,
			Class:       benchClass(procs),
			AlltoallAlg: al,
			Tracer:      tr,
			Seed:        int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		scen, err := tr.Scenario("ft_scenario", collsel.Alltoall)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(scen.MaxSkewNs())/1000, "max-skew-us")
		b.ReportMetric(res.RuntimeSec*1000, "ft-ms")
	}
}

// --- Fig. 4: simulation study -------------------------------------------------

func benchFig4(b *testing.B, c coll.Collective) {
	procs := benchProcs()
	sizes := []int{8, 1024, 65536}
	for i := 0; i < b.N; i++ {
		res, err := expt.RunFig4(expt.Fig4Config{
			Collective: c,
			Procs:      procs,
			MsgSizes:   sizes,
			Seed:       int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		// Metric: how many (pattern,size) cells pick a different algorithm
		// than the no-delay benchmark would (the optimization potential).
		flips, cells := 0, 0
		var gain float64
		for _, s := range res.Sizes {
			winner := s.Cells[0].Best.Name
			for _, cell := range s.Cells[1:] {
				cells++
				if cell.Best.Name != winner {
					flips++
				}
				gain += 1 - cell.Ratio
			}
		}
		b.ReportMetric(float64(flips)/float64(cells)*100, "winner-flips-%")
		b.ReportMetric(gain/float64(cells)*100, "mean-gain-%")
	}
}

func BenchmarkFig4_Reduce(b *testing.B)    { benchFig4(b, coll.Reduce) }
func BenchmarkFig4_Allreduce(b *testing.B) { benchFig4(b, coll.Allreduce) }
func BenchmarkFig4_Alltoall(b *testing.B)  { benchFig4(b, coll.Alltoall) }

// --- Fig. 5: real-machine pattern impact ---------------------------------------

func benchFig5(b *testing.B, c coll.Collective, sizes []int) {
	procs := benchProcs()
	for i := 0; i < b.N; i++ {
		res, err := expt.RunFig5(expt.Fig5Config{
			Platform:   netmodel.Hydra(),
			Collective: c,
			Procs:      procs,
			MsgSizes:   sizes,
			Reps:       3,
			Seed:       int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		// Metric: fraction of pattern rows whose "good set" differs from the
		// no-delay row's good set (how misleading the synchronized bench is).
		differing, rows := 0, 0
		for _, s := range res.Sizes {
			base := s.Good[0]
			for _, g := range s.Good[1:] {
				rows++
				for j := range g {
					if g[j] != base[j] {
						differing++
						break
					}
				}
			}
		}
		b.ReportMetric(float64(differing)/float64(rows)*100, "changed-goodset-%")
	}
}

func BenchmarkFig5_Reduce(b *testing.B)    { benchFig5(b, coll.Reduce, []int{8, 1024, 1048576}) }
func BenchmarkFig5_Allreduce(b *testing.B) { benchFig5(b, coll.Allreduce, []int{8, 1024, 1048576}) }
func BenchmarkFig5_Alltoall(b *testing.B)  { benchFig5(b, coll.Alltoall, []int{8, 1024, 1048576}) }

// --- Fig. 6: robustness classes --------------------------------------------------

func benchFig6(b *testing.B, c coll.Collective) {
	procs := benchProcs()
	for i := 0; i < b.N; i++ {
		res, err := expt.RunFig6(expt.Fig6Config{
			Platform:   netmodel.Hydra(),
			Collective: c,
			Procs:      procs,
			MsgSizes:   []int{8, 1024, 1048576},
			Reps:       3,
			Seed:       int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		faster, slower, total := 0, 0, 0
		for _, s := range res.Sizes {
			for _, row := range s.Cells {
				for _, cell := range row {
					total++
					switch cell.Class {
					case core.Faster:
						faster++
					case core.Slower:
						slower++
					}
				}
			}
		}
		b.ReportMetric(float64(faster)/float64(total)*100, "green-%")
		b.ReportMetric(float64(slower)/float64(total)*100, "red-%")
	}
}

func BenchmarkFig6_Reduce(b *testing.B)    { benchFig6(b, coll.Reduce) }
func BenchmarkFig6_Allreduce(b *testing.B) { benchFig6(b, coll.Allreduce) }
func BenchmarkFig6_Alltoall(b *testing.B)  { benchFig6(b, coll.Alltoall) }

// --- Figs. 7-9: the FT case study -------------------------------------------------

func benchFTStudy(b *testing.B, pl *netmodel.Platform) {
	procs := benchProcs()
	for i := 0; i < b.N; i++ {
		res, err := expt.RunFTStudy(expt.FTStudyConfig{
			Platforms: []*netmodel.Platform{pl},
			Procs:     procs,
			Class:     benchClass(procs),
			Runs:      2,
			Reps:      2,
			Seed:      int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		ms := res.Machines[0]
		// Fig. 7 metric: rank correlation between the FT runtimes and the
		// no-delay micro-benchmark would be 1.0 if the synchronized bench
		// were a faithful predictor. Report the prediction error of both
		// estimators (Fig. 9): mean |predicted-actual|/actual.
		var errND, errAvg float64
		for j := range ms.Algorithms {
			a := ms.FTRuntimeSec[j]
			errND += abs(ms.Predictions[j].NoDelaySec-a) / a
			errAvg += abs(ms.Predictions[j].AvgSec-a) / a
		}
		n := float64(len(ms.Algorithms))
		b.ReportMetric(errND/n*100, "pred-err-nodelay-%")
		b.ReportMetric(errAvg/n*100, "pred-err-avg-%")
		b.ReportMetric(float64(ms.MaxTracedSkewNs)/1000, "traced-skew-us")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func BenchmarkFig789_FTStudyHydra(b *testing.B)      { benchFTStudy(b, netmodel.Hydra()) }
func BenchmarkFig789_FTStudyGalileo100(b *testing.B) { benchFTStudy(b, netmodel.Galileo100()) }
func BenchmarkFig789_FTStudyDiscoverer(b *testing.B) { benchFTStudy(b, netmodel.Discoverer()) }

// --- Selection workflow (the paper's contribution, end to end) ----------------------

func BenchmarkSelection_Alltoall32KiB(b *testing.B) {
	procs := benchProcs()
	for i := 0; i < b.N; i++ {
		sel, err := collsel.Select(collsel.SelectConfig{
			Machine:    collsel.Galileo100(),
			Collective: collsel.Alltoall,
			MsgBytes:   32768,
			Procs:      procs,
			Reps:       2,
			Seed:       int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		changed := 0.0
		if sel.Recommended.Name != sel.ConventionalChoice.Name {
			changed = 1.0
		}
		b.ReportMetric(changed, "selection-changed")
		b.ReportMetric(sel.Ranking[0].Score, "best-score")
	}
}

// --- Per-algorithm micro-costs (Table II catalogue) ----------------------------------

func benchOneCollectiveCall(b *testing.B, c coll.Collective, id int, msgBytes int) {
	procs := benchProcs()
	al, ok := collsel.AlgorithmByID(c, id)
	if !ok {
		b.Fatalf("no algorithm %v/%d", c, id)
	}
	count, elemSize := expt.SizeToCount(msgBytes)
	for i := 0; i < b.N; i++ {
		res, err := collsel.RunBenchmark(collsel.BenchConfig{
			Platform:      collsel.SimCluster(),
			Procs:         procs,
			Algorithm:     al,
			Count:         count,
			ElemSize:      elemSize,
			Reps:          1,
			PerfectClocks: true,
			NoNoise:       true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LastDelay.Mean/1000, "dhat-us")
	}
}

func BenchmarkAlg_Reduce_Binomial_1KiB(b *testing.B) { benchOneCollectiveCall(b, coll.Reduce, 5, 1024) }
func BenchmarkAlg_Reduce_InOrderBin_1KiB(b *testing.B) {
	benchOneCollectiveCall(b, coll.Reduce, 6, 1024)
}
func BenchmarkAlg_Allreduce_RecDbl_1KiB(b *testing.B) {
	benchOneCollectiveCall(b, coll.Allreduce, 3, 1024)
}
func BenchmarkAlg_Allreduce_Ring_1MiB(b *testing.B) {
	benchOneCollectiveCall(b, coll.Allreduce, 4, 1048576)
}
func BenchmarkAlg_Alltoall_Linear_32KiB(b *testing.B) {
	benchOneCollectiveCall(b, coll.Alltoall, 1, 32768)
}
func BenchmarkAlg_Alltoall_Pairwise_32KiB(b *testing.B) {
	benchOneCollectiveCall(b, coll.Alltoall, 2, 32768)
}
func BenchmarkAlg_Alltoall_Bruck_8B(b *testing.B) { benchOneCollectiveCall(b, coll.Alltoall, 3, 8) }
func BenchmarkAlg_Alltoall_LinearSync_32KiB(b *testing.B) {
	benchOneCollectiveCall(b, coll.Alltoall, 4, 32768)
}
