// Command compilestore compiles a decision-table artifact offline: it runs
// the full pattern-robust selection for every (collective, procs, message
// size) grid point and writes the winners — with provenance and a content
// checksum — to a versioned JSON artifact that collseld serves from.
//
// Usage:
//
//	compilestore -machine SimCluster -procs 8 -o table.json
//	compilestore -machine Hydra -colls alltoall -procs 64,256 \
//	    -sizes 1024,32768,1048576 -factor 1.5 -o hydra.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"collsel/internal/cliutil"
	"collsel/internal/fault"
	"collsel/internal/store"
)

func main() {
	machine := flag.String("machine", "SimCluster", "machine model to compile for")
	colls := flag.String("colls", "", "comma-separated collectives (default reduce,allreduce,alltoall)")
	procsList := flag.String("procs", "", "comma-separated process counts (default: the full machine)")
	sizes := flag.String("sizes", "", "comma-separated message sizes in bytes (default: 8,64,1024,16384,262144,1048576)")
	seed := flag.Int64("seed", 1, "simulation seed")
	factor := flag.Float64("factor", 1.0, "skew factor on the average no-delay runtime")
	reps := flag.Int("reps", 0, "benchmark repetitions per cell (0: per-machine default)")
	warmup := flag.Int("warmup", 0, "warmup repetitions per cell")
	dropRate := flag.Float64("drop", 0, "message drop probability for fault-aware compilation (0 disables)")
	retries := flag.Int("retries", 0, "max retransmissions per message when -drop is set (0: library default)")
	watchdog := flag.Int64("watchdog", 0, "virtual-time watchdog per cell in ns (0 disables)")
	pruneTopK := flag.Int("prune-topk", 0, "simulate only the analytical model's top K candidates per cell (0: full dense sweep)")
	workers := flag.Int("workers", 0, "concurrent cell simulations (0 = GOMAXPROCS); results are identical at any value")
	progress := flag.Bool("progress", false, "print per-cell progress to stderr")
	created := flag.Int64("created", time.Now().Unix(), "artifact build timestamp (Unix seconds); fix it for byte-reproducible artifacts")
	out := flag.String("o", "decision_table.json", "output artifact path")
	flag.Parse()

	ctx, stop := cliutil.SignalContext()
	defer stop()

	pl, err := cliutil.Machine(*machine)
	if err != nil {
		cliutil.Usage("compilestore", err)
	}
	collectives, err := cliutil.Collectives(*colls, nil) // nil: CompileConfig default
	if err != nil {
		cliutil.Usage("compilestore", err)
	}
	procs, err := cliutil.ParseSizes(*procsList)
	if err != nil {
		cliutil.Usage("compilestore", fmt.Errorf("bad -procs: %v", err))
	}
	for _, p := range procs {
		if err := cliutil.CheckProcs(p, pl); err != nil {
			cliutil.Usage("compilestore", err)
		}
	}
	msgSizes, err := cliutil.ParseSizes(*sizes)
	if err != nil {
		cliutil.Usage("compilestore", err)
	}
	var faults fault.Profile
	if *dropRate > 0 {
		faults = fault.Profile{Enabled: true, DropProb: *dropRate, MaxRetries: *retries}
	}

	start := time.Now()
	tb, err := store.Compile(ctx, store.CompileConfig{
		Platform:    pl,
		Collectives: collectives,
		ProcsList:   procs,
		Sizes:       msgSizes,
		Seed:        *seed,
		Factor:      *factor,
		Reps:        *reps,
		Warmup:      *warmup,
		Faults:      faults,
		WatchdogNs:  *watchdog,
		PruneTopK:   *pruneTopK,
		Runner:      cliutil.Engine(*workers),
		Progress:    cliutil.ProgressPrinter(os.Stderr, "compilestore", *progress),
		CreatedUnix: *created,
	})
	if err != nil {
		cliutil.Fatal("compilestore", err)
	}
	if err := tb.Save(*out); err != nil {
		cliutil.Fatal("compilestore", err)
	}
	fmt.Printf("wrote %s: table %s for %s (%s), %d cells in %d sections, compiled in %s\n",
		*out, tb.Version, tb.Machine, tb.PlatformFingerprint, tb.Cells(), len(tb.Sections),
		time.Since(start).Round(time.Millisecond))
}
