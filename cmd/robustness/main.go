// Command robustness reproduces the paper's Fig. 6 study: how much faster
// or slower does each collective algorithm get when exposed to an arrival
// pattern whose magnitude equals the algorithm's own no-delay runtime?
// Cells at least 25% faster are marked '*' (green in the paper), at least
// 25% slower '!' (red).
//
// Usage:
//
//	robustness -coll reduce -machine Hydra -procs 256
package main

import (
	"flag"
	"fmt"
	"os"

	"collsel/internal/cliutil"
	"collsel/internal/coll"
	"collsel/internal/expt"
)

func main() {
	collName := flag.String("coll", "reduce", "collective: reduce, allreduce, alltoall")
	machine := flag.String("machine", "Hydra", "machine model")
	procs := flag.Int("procs", 256, "number of processes (paper: 1024)")
	sizes := flag.String("sizes", "", "comma-separated message sizes (default: 8,1024,1048576)")
	reps := flag.Int("reps", 5, "benchmark repetitions per cell")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	c, ok := coll.CollectiveByName(*collName)
	if !ok {
		fmt.Fprintf(os.Stderr, "robustness: unknown collective %q\n", *collName)
		os.Exit(2)
	}
	pl, err := cliutil.Machine(*machine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "robustness: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.CheckProcs(*procs, pl); err != nil {
		fmt.Fprintf(os.Stderr, "robustness: %v\n", err)
		os.Exit(2)
	}
	msgSizes, err := cliutil.ParseSizes(*sizes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "robustness: %v\n", err)
		os.Exit(2)
	}
	res, err := expt.RunFig6(expt.Fig6Config{
		Platform:   pl,
		Collective: c,
		Procs:      *procs,
		MsgSizes:   msgSizes,
		Reps:       *reps,
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "robustness: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
}
