// Command latbench is an OSU-micro-benchmarks-style latency sweep: for a
// collective, it prints the mean last-delay of every algorithm across a
// ladder of message sizes — optionally under an arrival pattern, which is
// exactly what conventional benchmark suites cannot do and what makes
// their tuning tables misleading (the paper's core observation).
//
// Usage:
//
//	latbench -coll alltoall -machine Hydra -procs 128
//	latbench -coll reduce -pattern last_delayed -skew 500000
//	latbench -coll allreduce -pattern-file ft.pattern
package main

import (
	"flag"
	"fmt"
	"os"

	"collsel/internal/cliutil"
	"collsel/internal/coll"
	"collsel/internal/expt"
	"collsel/internal/microbench"
	"collsel/internal/pattern"
	"collsel/internal/table"
)

func main() {
	collName := flag.String("coll", "alltoall", "collective to sweep")
	machine := flag.String("machine", "Hydra", "machine model")
	procs := flag.Int("procs", 128, "number of processes")
	sizes := flag.String("sizes", "", "comma-separated sizes (default: 8..1MiB ladder)")
	patName := flag.String("pattern", "", "arrival pattern shape (default: none/no-delay)")
	patFile := flag.String("pattern-file", "", "arrival pattern file (one delay per line)")
	skew := flag.Int64("skew", 1_000_000, "max skew in ns for -pattern")
	reps := flag.Int("reps", 3, "repetitions per cell")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	c, ok := coll.CollectiveByName(*collName)
	if !ok {
		fail("unknown collective %q", *collName)
	}
	pl, err := cliutil.Machine(*machine)
	if err != nil {
		fail("%v", err)
	}
	if err := cliutil.CheckProcs(*procs, pl); err != nil {
		fail("%v", err)
	}
	msgSizes, err := cliutil.ParseSizes(*sizes)
	if err != nil {
		fail("%v", err)
	}
	if len(msgSizes) == 0 {
		msgSizes = []int{8, 64, 1024, 8192, 32768, 262144, 1048576}
	}
	var pat pattern.Pattern
	switch {
	case *patFile != "":
		pat, err = pattern.ReadFile(*patFile)
		if err != nil {
			fail("%v", err)
		}
		if pat.Size() != *procs {
			fail("pattern file has %d processes, -procs is %d", pat.Size(), *procs)
		}
	case *patName != "":
		sh, ok := pattern.ShapeByName(*patName)
		if !ok {
			fail("unknown pattern %q", *patName)
		}
		pat = pattern.Generate(sh, *procs, *skew, *seed)
	}

	algs := coll.TableII(c)
	if len(algs) == 0 {
		algs = coll.Algorithms(c)
	}
	patLabel := "no-delay"
	if pat.Size() > 0 {
		patLabel = pat.Name
	}
	fmt.Printf("# %v latency sweep on %s, %d procs, pattern: %s\n", c, pl.Name, *procs, patLabel)
	headers := []string{"size"}
	for _, al := range algs {
		headers = append(headers, fmt.Sprintf("%d:%s", al.ID, al.Abbrev))
	}
	tb := table.New(headers...)
	for _, sz := range msgSizes {
		count, elemSize := expt.SizeToCount(sz)
		row := []string{table.Bytes(sz)}
		for _, al := range algs {
			res, err := microbench.Run(microbench.Config{
				Platform:  pl,
				Procs:     *procs,
				Seed:      *seed,
				Algorithm: al,
				Count:     count,
				ElemSize:  elemSize,
				Pattern:   pat,
				Reps:      *reps,
			})
			if err != nil {
				fail("%s at %d B: %v", al.Name, sz, err)
			}
			row = append(row, table.Ns(res.LastDelay.Mean))
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.String())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "latbench: "+format+"\n", args...)
	os.Exit(1)
}
