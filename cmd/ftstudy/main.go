// Command ftstudy reproduces the paper's Section V case study (Figs. 1, 7,
// 8 and 9): run the NAS-FT proxy with every Alltoall algorithm on the
// modelled machines, trace its arrival patterns, replay them in
// micro-benchmarks, and compare predicted and actual application runtimes.
//
// Usage:
//
//	ftstudy                       # all figures, all machines, class C @ 256
//	ftstudy -fig 8 -machines Hydra
//	ftstudy -class D -procs 1024  # the paper's own scale (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"collsel/internal/apps/ft"
	"collsel/internal/cliutil"
	"collsel/internal/expt"
)

func main() {
	fig := flag.Int("fig", 0, "figure to print: 1, 7, 8 or 9 (0 = all)")
	machines := flag.String("machines", "", "comma-separated machine list (default: Hydra,Galileo100,Discoverer)")
	procs := flag.Int("procs", 256, "number of processes")
	class := flag.String("class", "C", "FT problem class: A, B, C, D")
	runs := flag.Int("runs", 3, "FT executions per algorithm (paper: 10)")
	reps := flag.Int("reps", 3, "micro-benchmark repetitions per cell")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	pls, err := cliutil.Machines(*machines)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftstudy: %v\n", err)
		os.Exit(2)
	}
	for _, pl := range pls {
		if err := cliutil.CheckProcs(*procs, pl); err != nil {
			fmt.Fprintf(os.Stderr, "ftstudy: %v\n", err)
			os.Exit(2)
		}
	}
	cl, ok := ft.ClassByName(*class)
	if !ok {
		fmt.Fprintf(os.Stderr, "ftstudy: unknown class %q\n", *class)
		os.Exit(2)
	}
	res, err := expt.RunFTStudy(expt.FTStudyConfig{
		Platforms: pls,
		Procs:     *procs,
		Class:     cl,
		Runs:      *runs,
		Reps:      *reps,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftstudy: %v\n", err)
		os.Exit(1)
	}
	switch *fig {
	case 1:
		fmt.Print(res.FormatFig1(""))
	case 7:
		fmt.Print(res.FormatFig7())
	case 8:
		fmt.Print(res.FormatFig8())
	case 9:
		fmt.Print(res.FormatFig9())
	default:
		fmt.Print(res.FormatFig1(""))
		fmt.Println()
		fmt.Print(res.FormatFig7())
		fmt.Print(res.FormatFig8())
		fmt.Println()
		fmt.Print(res.FormatFig9())
	}
}
