// Command collsellint runs the repo's custom go/analysis suite: the seven
// analyzers that mechanically enforce the invariants the reproduction and
// its serving stack depend on (see DESIGN.md "Enforced invariants"):
// determinism, ctxplumb, gohygiene, lockhold, metrichygiene,
// statuscontract and checksumfield.
//
// It is one binary with two faces:
//
//   - invoked with package patterns, it drives itself through the go
//     command, which handles loading, type-checking, fact propagation and
//     caching:
//
//     go run ./cmd/collsellint ./...
//
//   - invoked by `go vet -vettool=...` (the go command passes -V=full and
//     then a *.cfg file per package), it acts as a standard unitchecker
//     backend. The plain driver face is just sugar for
//
//     go vet -vettool=$(which collsellint) ./...
//
// Driver-only modes:
//
//	collsellint -json ./...        emit go vet's JSON diagnostic stream
//	collsellint -sarif out ./...   write SARIF 2.1.0 for CI annotations ("-" = stdout)
//	collsellint -audit ./...       list every //collsel: escape hatch with its
//	                               justification; exit non-zero on stale ones
//	                               (directives that no longer suppress a finding)
//
// Exit status is non-zero when any analyzer reports a diagnostic, and in
// -audit mode also when a stale or malformed escape hatch exists.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"collsel/internal/analysis/annotation"
	"collsel/internal/analysis/checksumfield"
	"collsel/internal/analysis/ctxplumb"
	"collsel/internal/analysis/determinism"
	"collsel/internal/analysis/gohygiene"
	"collsel/internal/analysis/lockhold"
	"collsel/internal/analysis/metrichygiene"
	"collsel/internal/analysis/statuscontract"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		ctxplumb.Analyzer,
		gohygiene.Analyzer,
		lockhold.Analyzer,
		metrichygiene.Analyzer,
		statuscontract.Analyzer,
		checksumfield.Analyzer,
	}
}

func main() {
	if vetToolMode(os.Args[1:]) {
		unitchecker.Main(analyzers()...) // does not return
	}
	os.Exit(driver(os.Args[1:]))
}

// vetToolMode reports whether the process was invoked by the go command's
// vet machinery rather than by a human: `-V=full` for the tool version
// handshake, a *.cfg package config, or analyzer flags (which only the
// unitchecker face understands). The driver-only flags below stay in
// driver mode.
func vetToolMode(args []string) bool {
	if len(args) == 0 {
		return true // print usage via unitchecker
	}
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
		if strings.HasPrefix(a, "-") {
			name, _, _ := strings.Cut(a, "=")
			switch name {
			case "-json", "-sarif", "-audit":
			default:
				return true
			}
		}
	}
	return false
}

// driver interprets the human-facing command line and returns the exit
// code.
func driver(args []string) int {
	var (
		jsonOut  bool
		sarifOut string
		audit    bool
		patterns []string
	)
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, val, hasVal := strings.Cut(a, "=")
		switch name {
		case "-json":
			jsonOut = true
		case "-audit":
			audit = true
		case "-sarif":
			if hasVal {
				sarifOut = val
			} else if i+1 < len(args) {
				i++
				sarifOut = args[i]
			} else {
				fmt.Fprintln(os.Stderr, "collsellint: -sarif needs an output path (\"-\" for stdout)")
				return 2
			}
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "collsellint: %v\n", err)
		return 1
	}

	switch {
	case audit:
		return runAudit(exe, patterns)
	case sarifOut != "":
		return runSARIF(exe, patterns, sarifOut)
	case jsonOut:
		out, code := runVetJSON(exe, patterns, nil)
		os.Stdout.Write(out)
		return code
	}

	// Plain mode: hand the package patterns to go vet with ourselves as
	// the vettool. os.Executable works under `go run` too (the temporary
	// binary exists for the duration of the run).
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "collsellint: %v\n", err)
		return 1
	}
	return 0
}

// diag is one parsed diagnostic from go vet's JSON stream.
type diag struct {
	analyzer string
	file     string
	line     int
	col      int
	message  string
}

type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// runVetJSON runs `go vet -vettool=exe -json extra... patterns...` and
// returns the raw combined stdout plus an exit code reflecting vet
// failures (vet itself exits 0 in JSON mode; load errors surface on
// stderr with a non-zero code).
func runVetJSON(exe string, patterns, extra []string) ([]byte, int) {
	args := append([]string{"vet", "-vettool=" + exe, "-json"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	// go vet emits the JSON diagnostic stream (and the `# pkg` comment
	// lines) on stderr; capture both streams so nothing is lost.
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	code := 0
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else {
			fmt.Fprintf(os.Stderr, "collsellint: %v\n", err)
			code = 1
		}
	}
	return out.Bytes(), code
}

// parseVetJSON decodes the stream go vet -json emits: `# pkg` comment
// lines interleaved with one JSON object per package of the shape
// {"pkgid": {"analyzer": [diag, ...] | {"error": ...}}}.
func parseVetJSON(raw []byte) ([]diag, error) {
	var filtered bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	for sc.Scan() {
		if strings.HasPrefix(strings.TrimSpace(sc.Text()), "#") {
			continue
		}
		filtered.Write(sc.Bytes())
		filtered.WriteByte('\n')
	}
	var diags []diag
	dec := json.NewDecoder(&filtered)
	for dec.More() {
		var tree map[string]map[string]json.RawMessage
		if err := dec.Decode(&tree); err != nil {
			return nil, fmt.Errorf("decode vet json: %w", err)
		}
		for _, byAnalyzer := range tree {
			for name, rawDiags := range byAnalyzer {
				var ds []jsonDiagnostic
				if err := json.Unmarshal(rawDiags, &ds); err != nil {
					continue // per-package error object, reported by vet on stderr
				}
				for _, d := range ds {
					file, line, col := splitPosn(d.Posn)
					diags = append(diags, diag{analyzer: name, file: file, line: line, col: col, message: d.Message})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].file != diags[j].file {
			return diags[i].file < diags[j].file
		}
		if diags[i].line != diags[j].line {
			return diags[i].line < diags[j].line
		}
		return diags[i].message < diags[j].message
	})
	return diags, nil
}

// splitPosn parses "file:line:col" (the file part may contain colons on
// other platforms, so split from the right).
func splitPosn(posn string) (file string, line, col int) {
	rest := posn
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		col, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		line, _ = strconv.Atoi(rest[i+1:])
		rest = rest[:i]
	}
	return rest, line, col
}

// --- SARIF ---

// Minimal SARIF 2.1.0 document: one run, one rule per analyzer, one
// result per diagnostic. Enough for GitHub code-scanning upload or the
// sarif-annotator actions.
type sarifDoc struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}
type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}
type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}
type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}
type sarifRule struct {
	ID        string    `json:"id"`
	ShortDesc sarifText `json:"shortDescription"`
}
type sarifText struct {
	Text string `json:"text"`
}
type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}
type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}
type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}
type sarifArtifact struct {
	URI string `json:"uri"`
}
type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func runSARIF(exe string, patterns []string, out string) int {
	raw, _ := runVetJSON(exe, patterns, nil)
	diags, err := parseVetJSON(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "collsellint: %v\n", err)
		return 1
	}

	cwd, _ := os.Getwd()
	doc := sarifDoc{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
	}
	run := sarifRun{Results: []sarifResult{}}
	run.Tool.Driver.Name = "collsellint"
	for _, a := range analyzers() {
		short, _, _ := strings.Cut(a.Doc, "\n")
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID: a.Name, ShortDesc: sarifText{Text: short},
		})
	}
	for _, d := range diags {
		uri := d.file
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.file); err == nil && !strings.HasPrefix(rel, "..") {
				uri = filepath.ToSlash(rel)
			}
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.analyzer,
			Level:   "error",
			Message: sarifText{Text: d.message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: uri},
				Region:           sarifRegion{StartLine: d.line, StartColumn: d.col},
			}}},
		})
	}
	doc.Runs = []sarifRun{run}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "collsellint: %v\n", err)
		return 1
	}
	enc = append(enc, '\n')
	if out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "collsellint: %v\n", err)
		return 1
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "collsellint: %d finding(s) written to %s\n", len(diags), out)
		return 1
	}
	return 0
}

// --- Escape-hatch audit ---

// hatch is one //collsel: directive found in the source tree.
type hatch struct {
	file          string
	line          int
	verb          string
	justification string
	live          bool
}

// runAudit re-runs the suite with every analyzer's -audit flag set, which
// makes each suppression emit a marker diagnostic at its directive's
// position, then cross-references the markers against the directives
// parsed from source. A justified directive with no marker suppresses
// nothing: it is stale and fails the audit (the flagged condition was
// fixed or the code deleted, so the hatch must go too).
func runAudit(exe string, patterns []string) int {
	var extra []string
	for _, a := range analyzers() {
		extra = append(extra, "-"+a.Name+".audit")
	}
	raw, _ := runVetJSON(exe, patterns, extra)
	diags, err := parseVetJSON(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "collsellint: %v\n", err)
		return 1
	}

	markers := make(map[string]bool) // "file:line" of live directives
	var findings []diag              // real diagnostics (tree not clean)
	for _, d := range diags {
		if strings.HasPrefix(d.message, annotation.AuditMarker) {
			markers[fmt.Sprintf("%s:%d", d.file, d.line)] = true
		} else {
			findings = append(findings, d)
		}
	}

	hatches, err := collectHatches(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "collsellint: %v\n", err)
		return 1
	}

	stale := 0
	fmt.Printf("%d escape hatch(es):\n", len(hatches))
	for i := range hatches {
		h := &hatches[i]
		h.live = markers[fmt.Sprintf("%s:%d", h.file, h.line)]
		status := "live"
		if !h.live {
			status = "STALE"
			stale++
		}
		rel := h.file
		if cwd, err := os.Getwd(); err == nil {
			if r, err := filepath.Rel(cwd, h.file); err == nil && !strings.HasPrefix(r, "..") {
				rel = r
			}
		}
		fmt.Printf("  %-5s %s:%d  //collsel:%s  %s\n", status, rel, h.line, h.verb, h.justification)
	}

	code := 0
	if stale > 0 {
		fmt.Fprintf(os.Stderr, "collsellint: %d stale escape hatch(es): the suppressed finding no longer exists; remove the directive\n", stale)
		code = 1
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "collsellint: tree is not clean (%d finding(s)):\n", len(findings))
		for _, d := range findings {
			fmt.Fprintf(os.Stderr, "  %s:%d: %s: %s\n", d.file, d.line, d.analyzer, d.message)
		}
		code = 1
	}
	return code
}

// collectHatches parses every non-test .go file of the matched packages
// for justified //collsel: directives. Unjustified or unknown-verb
// directives are already hard findings (determinism audits the namespace),
// so they surface through the findings path, not here.
func collectHatches(patterns []string) ([]hatch, error) {
	cmd := exec.Command("go", append([]string{"list", "-f", "{{.Dir}}"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	dirs := strings.Fields(string(out))
	sort.Strings(dirs)

	var hatches []hatch
	fset := token.NewFileSet()
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			for _, d := range annotation.Collect(fset, f).All() {
				if d.Justification == "" || !annotation.Known(d.Verb) {
					continue
				}
				hatches = append(hatches, hatch{
					file: path, line: d.Line, verb: d.Verb, justification: d.Justification,
				})
			}
		}
	}
	return hatches, nil
}
