// Command collsellint runs the repo's custom go/analysis suite: the
// determinism, ctxplumb and gohygiene analyzers that mechanically enforce
// the invariants the reproduction depends on (see DESIGN.md "Enforced
// invariants").
//
// It is one binary with two faces:
//
//   - invoked with package patterns, it drives itself through the go
//     command, which handles loading, type-checking and caching:
//
//     go run ./cmd/collsellint ./...
//
//   - invoked by `go vet -vettool=...` (the go command passes -V=full and
//     then a *.cfg file per package), it acts as a standard unitchecker
//     backend. The driver face is just sugar for
//
//     go vet -vettool=$(which collsellint) ./...
//
// Exit status is non-zero when any analyzer reports a diagnostic.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"collsel/internal/analysis/ctxplumb"
	"collsel/internal/analysis/determinism"
	"collsel/internal/analysis/gohygiene"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		ctxplumb.Analyzer,
		gohygiene.Analyzer,
	}
}

func main() {
	if vetToolMode(os.Args[1:]) {
		unitchecker.Main(analyzers()...) // does not return
	}

	// Driver mode: hand the package patterns to go vet with ourselves as
	// the vettool. os.Executable works under `go run` too (the temporary
	// binary exists for the duration of the run).
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "collsellint: %v\n", err)
		os.Exit(1)
	}
	args := append([]string{"vet", "-vettool=" + exe}, os.Args[1:]...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "collsellint: %v\n", err)
		os.Exit(1)
	}
}

// vetToolMode reports whether the process was invoked by the go command's
// vet machinery rather than by a human: `-V=full` for the tool version
// handshake, a *.cfg package config, or analyzer flags (which only the
// unitchecker face understands).
func vetToolMode(args []string) bool {
	if len(args) == 0 {
		return true // print usage via unitchecker
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
