package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// BenchmarkLintTree measures one full seven-analyzer sweep of the module —
// the cost `make lint` pays and the CI lint job amortizes through go vet's
// result cache. The vettool binary is built once outside the timed loop;
// iterations after the first measure the warm-cache path, so -benchtime 1x
// (the bench-json setting) reports the cold sweep.
func BenchmarkLintTree(b *testing.B) {
	root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		b.Fatalf("resolving module root: %v", err)
	}
	tool := filepath.Join(b.TempDir(), "collsellint")
	build := exec.Command("go", "build", "-o", tool, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		b.Fatalf("building vettool: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
		cmd.Dir = strings.TrimSpace(string(root))
		if out, err := cmd.CombinedOutput(); err != nil {
			b.Fatalf("lint sweep failed: %v\n%s", err, out)
		}
	}
}
