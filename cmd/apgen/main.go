// Command apgen generates arrival-pattern files: one line per process with
// that process's skew in nanoseconds (the format consumed by the
// micro-benchmark harness, cf. Sec. III-B of the paper).
//
// Usage:
//
//	apgen -shape last_delayed -procs 1024 -skew 1500000 -out last.pattern
//	apgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"collsel/internal/pattern"
)

func main() {
	shape := flag.String("shape", "ascending", "pattern shape (see -list)")
	procs := flag.Int("procs", 1024, "number of processes")
	skew := flag.Int64("skew", 1_000_000, "maximum process skew in ns")
	seed := flag.Int64("seed", 1, "seed for random shapes")
	out := flag.String("out", "", "output file (default: stdout)")
	list := flag.Bool("list", false, "list available shapes and exit")
	flag.Parse()

	if *list {
		for _, s := range pattern.AllShapes() {
			fmt.Println(s)
		}
		return
	}
	sh, ok := pattern.ShapeByName(*shape)
	if !ok {
		fmt.Fprintf(os.Stderr, "apgen: unknown shape %q (try -list)\n", *shape)
		os.Exit(2)
	}
	pat := pattern.Generate(sh, *procs, *skew, *seed)
	if *out == "" {
		fmt.Printf("# arrival pattern %q, %d processes, max skew %d ns\n", pat.Name, pat.Size(), pat.MaxSkewNs())
		for _, d := range pat.DelaysNs {
			fmt.Println(d)
		}
		return
	}
	if err := pat.WriteFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "apgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d processes, max skew %d ns)\n", *out, pat.Size(), pat.MaxSkewNs())
}
