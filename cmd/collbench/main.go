// Command collbench reproduces the paper's Fig. 5 micro-benchmark study:
// runtimes (last delay) of every Table II algorithm of a collective under a
// set of distinct arrival patterns on a modelled production machine, with
// the within-5%-of-fastest classification.
//
// Usage:
//
//	collbench -coll reduce -machine Hydra -procs 256
//	collbench -coll alltoall -machine Galileo100 -sizes 8,1024,1048576
package main

import (
	"flag"
	"fmt"
	"os"

	"collsel/internal/cliutil"
	"collsel/internal/expt"
)

func main() {
	collName := flag.String("coll", "reduce", "collective: reduce, allreduce, alltoall")
	machine := flag.String("machine", "Hydra", "machine model: Hydra, Galileo100, Discoverer, SimCluster")
	procs := flag.Int("procs", 256, "number of processes (paper: 1024 = 32x32)")
	sizes := flag.String("sizes", "", "comma-separated message sizes in bytes (default: 8,1024,1048576)")
	reps := flag.Int("reps", 5, "benchmark repetitions per cell")
	seed := flag.Int64("seed", 1, "seed")
	workers := flag.Int("workers", 0, "concurrent cell simulations (0 = GOMAXPROCS); results are identical at any value")
	progress := flag.Bool("progress", false, "print per-cell progress to stderr")
	flag.Parse()

	ctx, stop := cliutil.SignalContext()
	defer stop()

	c, err := cliutil.Collective(*collName)
	if err != nil {
		cliutil.Usage("collbench", err)
	}
	pl, err := cliutil.Machine(*machine)
	if err != nil {
		cliutil.Usage("collbench", err)
	}
	if err := cliutil.CheckProcs(*procs, pl); err != nil {
		cliutil.Usage("collbench", err)
	}
	msgSizes, err := cliutil.ParseSizes(*sizes)
	if err != nil {
		cliutil.Usage("collbench", err)
	}
	res, err := expt.RunFig5Ctx(ctx, expt.Fig5Config{
		Platform:   pl,
		Collective: c,
		Procs:      *procs,
		MsgSizes:   msgSizes,
		Reps:       *reps,
		Seed:       *seed,
		Runner:     cliutil.Engine(*workers),
		Progress:   cliutil.ProgressPrinter(os.Stderr, "collbench", *progress),
	})
	if err != nil {
		cliutil.Fatal("collbench", err)
	}
	fmt.Print(res.Format())
}
