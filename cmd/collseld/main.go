// Command collseld serves algorithm selections over HTTP from a compiled
// decision-table artifact (see compilestore). Queries the table covers are
// answered in sub-microsecond time; everything else falls through to a
// live selection guarded by coalescing, a bounded worker pool with a shed
// queue (-cold-queue), a per-request deadline (-select-timeout) and a
// circuit breaker (-breaker-*) that serves the nearest covered cell while
// the live path is unhealthy.
//
// Endpoints: POST/GET /select, GET /healthz, POST /reload, POST /observe,
// GET /metrics. SIGHUP also reloads the artifact; SIGINT/SIGTERM first
// drain (/healthz reports draining so balancers stop routing here,
// stragglers still get answers) for -drain, then shut down gracefully.
//
// -observe-wal enables the closed feedback loop: POST /observe ingests
// arrival-pattern observations into a crash-safe write-ahead log, and a
// background recompiler re-simulates drifted table cells and hot-swaps the
// tuned artifact in (written next to the WAL as autotuned.json). Without
// the flag /observe answers 404 and the daemon behaves exactly as before.
//
// -peers enables replication: the replicas consistent-hash the cold-cell
// keyspace among themselves, forward uncovered queries to the owning
// replica (hedging to the next one after -hedge-delay, capped by
// -retry-budget), gossip computed cells over POST /peer/cell, and track
// each other's liveness with -heartbeat probes. Every failure falls back
// to the local selection ladder — peers speed answers up, never gate them.
// Artifact saves retain the previous file as <store>.bak; startup and
// /reload recover from it when the primary is corrupt.
//
// Usage:
//
//	compilestore -machine SimCluster -procs 8 -o table.json
//	collseld -store table.json -addr :8177
//	curl 'localhost:8177/select?collective=alltoall&msg_bytes=1024&procs=8'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"collsel/internal/cliutil"
	"collsel/internal/cluster"
	"collsel/internal/feedback"
	"collsel/internal/serve"
	"collsel/internal/store"
)

func main() {
	storePath := flag.String("store", "decision_table.json", "decision-table artifact to serve")
	addr := flag.String("addr", ":8177", "listen address")
	coldWorkers := flag.Int("cold-workers", 2, "max concurrent live selections for uncovered queries")
	coldCache := flag.Int("cold-cache", 4096, "cold-result cache capacity (negative disables)")
	noCold := flag.Bool("no-cold", false, "refuse uncovered queries with 404 instead of computing them")
	coldQueue := flag.Int("cold-queue", 8, "cold requests allowed to wait for a worker; excess is shed with 429 (negative: no waiting)")
	selectTimeout := flag.Duration("select-timeout", 30*time.Second, "per-request deadline for cold selections, enforced down into the simulation workers (0 disables)")
	negRetries := flag.Int("negative-retries", 2, "recompute budget for a cached cold-path failure (negative disables negative caching)")
	modelTier := flag.Bool("model-tier", true, "answer uncovered queries instantly from the analytical cost model while a background simulation refines the cell into the table")
	observeRetryAfter := flag.Duration("observe-retry-after", time.Second, "Retry-After hint on shed /observe batches (429); tune to the observation producers' batching period")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive cold failures that trip the circuit breaker open")
	breakerOpen := flag.Duration("breaker-open", 10*time.Second, "breaker cooldown before the half-open probe")
	breakerSlow := flag.Duration("breaker-slowcall", 0, "cold selections slower than this count as breaker failures (0 disables)")
	drainWait := flag.Duration("drain", 10*time.Second, "grace period between SIGTERM (healthz flips to draining) and shutdown")
	observeWAL := flag.String("observe-wal", "", "directory for the /observe write-ahead log; empty disables the feedback loop")
	observeBuffer := flag.Int("observe-buffer", 64, "accepted-but-not-yet-logged observation batches; /observe sheds with 429 beyond this")
	recompileThreshold := flag.Float64("recompile-threshold", 0.25, "skew-factor drift that marks a table cell stale and triggers recompilation")
	recompileBackoff := flag.Duration("recompile-backoff", 500*time.Millisecond, "base retry delay after a failed recompilation (doubles per failure, capped)")
	peers := flag.String("peers", "", "comma-separated base URLs of every replica (including this one); empty disables clustering")
	self := flag.String("self", "", "this replica's own base URL as it appears in -peers (required with -peers)")
	hedgeDelay := flag.Duration("hedge-delay", 50*time.Millisecond, "wait on the owning replica before hedging a forwarded cold query to the next one")
	retryBudget := flag.Float64("retry-budget", cluster.DefaultRetryBudget, "fraction of forwarded requests allowed to hedge or retry (the anti-retry-storm cap)")
	heartbeat := flag.Duration("heartbeat", time.Second, "peer liveness probe interval")
	peerTimeout := flag.Duration("peer-timeout", 5*time.Second, "per-call timeout for peer HTTP requests (forwards, probes, shares)")
	flag.Parse()

	logger := log.New(os.Stderr, "collseld: ", log.LstdFlags)

	tb, usedBackup, err := store.LoadWithFallback(*storePath)
	if err != nil {
		cliutil.Fatal("collseld", err)
	}
	if usedBackup {
		logger.Printf("primary artifact %s unusable, recovered last-known-good %s", *storePath, store.BackupPath(*storePath))
	}
	logger.Printf("loaded %s: table %s for %s, %d cells", *storePath, tb.Version, tb.Machine, tb.Cells())

	handle := store.NewHandle(tb)

	// The feedback pipeline recovers its WAL before the listener opens:
	// observations that survived a crash shape the very first recompile.
	var pipeline *feedback.Pipeline
	if *observeWAL != "" {
		pipeline, err = feedback.New(feedback.Config{
			WALDir:      *observeWAL,
			Buffer:      *observeBuffer,
			Plan:        feedback.PlanConfig{Threshold: *recompileThreshold},
			BackoffBase: *recompileBackoff,
			Handle:      handle,
			Logf:        logger.Printf,
		})
		if err != nil {
			cliutil.Fatal("collseld", err)
		}
		st := pipeline.Stats()
		logger.Printf("feedback loop enabled: WAL %s (%d records recovered, %d profiles), artifact %s",
			*observeWAL, st.WAL.Records, st.Profiles, filepath.Join(*observeWAL, "autotuned.json"))
	}

	// The replication layer: a static peer ring with consistent-hash
	// ownership of the cold-cell keyspace. Peers are an optimization — the
	// local ladder answers whenever they cannot — so clustering is wired
	// before serve.New but started after, and any validation error is fatal
	// (a typo'd peer list must not silently serve standalone).
	var clu *cluster.Cluster
	if *peers != "" {
		peerList := strings.Split(*peers, ",")
		for i := range peerList {
			peerList[i] = strings.TrimSpace(peerList[i])
		}
		if *self == "" {
			cliutil.Fatal("collseld", fmt.Errorf("-peers requires -self (this replica's URL as listed in -peers)"))
		}
		clu, err = cluster.New(cluster.Config{
			Self:        *self,
			Peers:       peerList,
			HedgeDelay:  *hedgeDelay,
			RetryBudget: *retryBudget,
			Health:      cluster.HealthConfig{Interval: *heartbeat},
			Transport:   cluster.NewHTTPTransport(*peerTimeout),
			Logf:        logger.Printf,
		})
		if err != nil {
			cliutil.Fatal("collseld", err)
		}
		logger.Printf("clustering enabled: self %s, %d replicas, hedge after %s, retry budget %.0f%%",
			*self, len(peerList), *hedgeDelay, *retryBudget*100)
	}

	srv, err := serve.New(serve.Config{
		Handle:            handle,
		StorePath:         *storePath,
		ColdDisabled:      *noCold,
		ColdWorkers:       *coldWorkers,
		ColdCacheCap:      *coldCache,
		ColdQueue:         *coldQueue,
		SelectTimeout:     *selectTimeout,
		NegativeRetries:   *negRetries,
		ModelTier:         *modelTier,
		ObserveRetryAfter: *observeRetryAfter,
		Breaker: serve.BreakerConfig{
			Failures: *breakerFailures,
			OpenFor:  *breakerOpen,
			SlowCall: *breakerSlow,
		},
		Feedback:        pipeline,
		Cluster:         clu,
		RetryJitterSeed: jitterSeed(*self, *addr),
		Logf:            logger.Printf,
	})
	if err != nil {
		cliutil.Fatal("collseld", err)
	}
	if pipeline != nil {
		pipeline.Start()
	}
	if clu != nil {
		clu.Start()
		defer clu.Close()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	// SIGHUP re-reads the artifact, the conventional daemon reload signal
	// (the HTTP /reload endpoint does the same).
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	//collsel:goroutine process-lifetime SIGHUP reload loop, owned by the daemon and reaped at exit
	go func() {
		for range hup {
			if rr, err := srv.Reload(); err != nil {
				logger.Printf("SIGHUP reload failed (still serving %s): %v", tableVersion(srv), err)
			} else {
				logger.Printf("SIGHUP reload: now serving table %s (%d cells)", rr.NewVersion, rr.Cells)
			}
		}
	}()

	errCh := make(chan error, 1)
	//collsel:goroutine ListenAndServe loop: joined through errCh and the graceful-shutdown path below
	go func() {
		logger.Printf("listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cliutil.Fatal("collseld", err)
		}
	case <-ctx.Done():
		// Drain before shutdown: /healthz flips to draining (503) so load
		// balancers stop routing here, then the grace period lets routed
		// stragglers arrive and finish before the listener closes. A second
		// signal during the drain skips straight to shutdown.
		stop()
		srv.StartDrain()
		if *drainWait > 0 {
			logger.Printf("draining for up to %s (send another signal to skip)", *drainWait)
			again, cancelAgain := cliutil.SignalContext()
			select {
			case <-time.After(*drainWait):
			case <-again.Done():
				logger.Printf("second signal: skipping drain")
			}
			cancelAgain()
		}
		logger.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			cliutil.Fatal("collseld", fmt.Errorf("shutdown: %w", err))
		}
	}
	// The pipeline outlives the listener: in-flight /observe handlers may
	// still be offering batches until Shutdown returns. Close drains every
	// accepted batch to the WAL — a 202 means durable across the restart.
	if pipeline != nil {
		if err := pipeline.Close(); err != nil {
			logger.Printf("feedback shutdown: %v", err)
		}
	}
}

func tableVersion(s *serve.Server) string {
	if t := s.TableSnapshot(); t != nil {
		return t.Version
	}
	return "none"
}

// jitterSeed derives a per-replica Retry-After jitter seed from its
// identity, so every replica in a cluster spreads its backoff hints
// differently while each individual replica stays deterministic.
func jitterSeed(self, addr string) int64 {
	h := fnv.New64a()
	h.Write([]byte(self))
	h.Write([]byte(addr))
	seed := int64(h.Sum64())
	if seed == 0 {
		seed = 1
	}
	return seed
}
