// Command selector is the end-user tool embodying the paper's contribution:
// it benchmarks every algorithm of a collective under the eight artificial
// arrival patterns on the chosen machine model and recommends the most
// robust algorithm — the one with the smallest average normalized runtime
// across patterns — rather than the winner of the synchronized (no-delay)
// benchmark alone.
//
// Usage:
//
//	selector -coll alltoall -machine Galileo100 -size 32768 -procs 256
//	selector -coll reduce -machine Hydra -size 8 -skew 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"collsel/internal/cliutil"
	"collsel/internal/coll"
	"collsel/internal/expt"
	"collsel/internal/pattern"
	"collsel/internal/table"
	"collsel/internal/tuning"
)

func main() {
	collName := flag.String("coll", "alltoall", "collective: reduce, allreduce, alltoall, bcast, ...")
	machine := flag.String("machine", "Hydra", "machine model")
	procs := flag.Int("procs", 256, "number of processes")
	size := flag.Int("size", 32768, "message size in bytes (per pair for alltoall)")
	skew := flag.Int64("skew", 0, "fixed max skew in ns (0 = use avg no-delay runtime)")
	factor := flag.Float64("factor", 1.0, "skew factor when -skew is 0")
	reps := flag.Int("reps", 5, "benchmark repetitions per cell")
	seed := flag.Int64("seed", 1, "seed")
	root := flag.Int("root", 0, "root rank for rooted collectives")
	save := flag.String("save", "", "append the selection to this tuning-table JSON file")
	workers := flag.Int("workers", 0, "concurrent cell simulations (0 = GOMAXPROCS); results are identical at any value")
	progress := flag.Bool("progress", false, "print per-cell progress to stderr")
	flag.Parse()

	ctx, stop := cliutil.SignalContext()
	defer stop()

	c, err := cliutil.Collective(*collName)
	if err != nil {
		cliutil.Usage("selector", err)
	}
	pl, err := cliutil.Machine(*machine)
	if err != nil {
		cliutil.Usage("selector", err)
	}
	if err := cliutil.CheckProcs(*procs, pl); err != nil {
		cliutil.Usage("selector", err)
	}
	algs := coll.TableII(c)
	if len(algs) == 0 {
		algs = coll.Algorithms(c)
	}
	policy := expt.SkewAvgRuntime
	if *skew > 0 {
		policy = expt.SkewFixed
	}
	m, _, err := expt.BuildMatrixCtx(ctx, expt.GridConfig{
		Platform:    pl,
		Procs:       *procs,
		Seed:        *seed,
		Algorithms:  algs,
		Shapes:      pattern.ArtificialShapes(),
		MsgBytes:    *size,
		Root:        *root,
		Policy:      policy,
		Factor:      *factor,
		FixedSkewNs: *skew,
		Reps:        *reps,
		Runner:      cliutil.Engine(*workers),
		Progress:    cliutil.ProgressPrinter(os.Stderr, "selector", *progress),
	})
	if err != nil {
		cliutil.Fatal("selector", err)
	}
	choices, err := m.SelectRobust()
	if err != nil {
		cliutil.Fatal("selector", err)
	}
	noDelay, _ := m.NoDelayChoice()

	fmt.Printf("Algorithm selection for %v, %s on %s, %d procs\n\n",
		c, table.Bytes(*size), pl.Name, *procs)
	tb := table.New("rank", "algorithm", "robustness score", "no-delay d-hat")
	nd := m.PatternIndex("no_delay")
	for i, ch := range choices {
		j := algIndex(m.Algorithms, ch.Algorithm.Name)
		tb.AddRow(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d:%s (%s)", ch.Algorithm.ID, ch.Algorithm.Name, ch.Algorithm.Abbrev),
			fmt.Sprintf("%.3f", ch.Score),
			table.Ns(m.ValueNs[nd][j]),
		)
	}
	fmt.Print(tb.String())
	fmt.Printf("\nrecommended (pattern-robust):    %s\n", choices[0].Algorithm.Name)
	fmt.Printf("conventional (no-delay fastest): %s\n", noDelay.Name)
	if cmp, err := expt.CompareStrategiesOn(m); err == nil {
		fmt.Println()
		fmt.Print(cmp.Format())
	}
	if choices[0].Algorithm.Name != noDelay.Name {
		fmt.Println("note: the synchronized benchmark would pick a different algorithm;")
		fmt.Println("      under realistic arrival patterns that choice is expected to underperform.")
	}

	if *save != "" {
		tb, err := tuning.Load(*save)
		if err != nil {
			if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "selector: %v\n", err)
				os.Exit(1)
			}
			tb = &tuning.Table{Machine: pl.Name, Procs: *procs}
		}
		rule := tuning.Rule{
			Collective: c.String(),
			MinBytes:   *size,
			MaxBytes:   *size,
			Algorithm:  choices[0].Algorithm.Name,
			Score:      choices[0].Score,
		}
		if err := tb.Add(rule); err != nil {
			fmt.Fprintf(os.Stderr, "selector: %v\n", err)
			os.Exit(1)
		}
		if err := tb.Save(*save); err != nil {
			fmt.Fprintf(os.Stderr, "selector: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nsaved rule to %s\n", *save)
	}
}

func algIndex(algs []coll.Algorithm, name string) int {
	for i, al := range algs {
		if al.Name == name {
			return i
		}
	}
	return 0
}
