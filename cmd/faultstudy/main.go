// Command faultstudy sweeps message drop rates over the paper's
// collectives and reports how the pattern-robust selection degrades: which
// algorithm the toolkit recommends at each loss level, how much transport
// retransmission traffic the grid generated, and which algorithms stopped
// completing and were excluded from the ranking.
//
// Usage:
//
//	faultstudy -machine Hydra -procs 64 -size 32768
//	faultstudy -colls allreduce -drops 0,0.05,0.2 -progress
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"collsel/internal/cliutil"
	"collsel/internal/coll"
	"collsel/internal/expt"
)

func main() {
	machine := flag.String("machine", "Hydra", "machine model")
	procs := flag.Int("procs", 64, "number of processes")
	colls := flag.String("colls", "reduce,allreduce,alltoall", "comma-separated collectives")
	size := flag.Int("size", 32*1024, "message size in bytes")
	drops := flag.String("drops", "", "comma-separated drop probabilities (default 0,0.005,0.02,0.08,0.2)")
	retries := flag.Int("retries", 0, "max retransmissions per message (0: library default)")
	reps := flag.Int("reps", 1, "benchmark repetitions per cell")
	seed := flag.Int64("seed", 1, "seed")
	watchdog := flag.Int64("watchdog", 0, "virtual-time watchdog per cell in ns (0: 60 s default)")
	workers := flag.Int("workers", 0, "max concurrent cell simulations (0: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "print cell progress")
	flag.Parse()

	pl, err := cliutil.Machine(*machine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultstudy: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.CheckProcs(*procs, pl); err != nil {
		fmt.Fprintf(os.Stderr, "faultstudy: %v\n", err)
		os.Exit(2)
	}
	var collectives []coll.Collective
	for _, f := range strings.Split(*colls, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		c, ok := coll.CollectiveByName(f)
		if !ok {
			fmt.Fprintf(os.Stderr, "faultstudy: unknown collective %q\n", f)
			os.Exit(2)
		}
		collectives = append(collectives, c)
	}
	dropRates, err := cliutil.ParseFloats(*drops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultstudy: %v\n", err)
		os.Exit(2)
	}

	res, err := expt.RunFaultStudy(expt.FaultStudyConfig{
		Platform:    pl,
		Collectives: collectives,
		Procs:       *procs,
		MsgBytes:    *size,
		DropRates:   dropRates,
		MaxRetries:  *retries,
		Seed:        *seed,
		Reps:        *reps,
		WatchdogNs:  *watchdog,
		Runner:      cliutil.Engine(*workers),
		Progress:    cliutil.ProgressPrinter(os.Stderr, "faultstudy", *progress),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultstudy: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(res.Format())
}
