// Command faultstudy sweeps message drop rates over the paper's
// collectives and reports how the pattern-robust selection degrades: which
// algorithm the toolkit recommends at each loss level, how much transport
// retransmission traffic the grid generated, and which algorithms stopped
// completing and were excluded from the ranking.
//
// Usage:
//
//	faultstudy -machine Hydra -procs 64 -size 32768
//	faultstudy -colls allreduce -drops 0,0.05,0.2 -progress
package main

import (
	"flag"
	"fmt"
	"os"

	"collsel/internal/cliutil"
	"collsel/internal/coll"
	"collsel/internal/expt"
)

func main() {
	machine := flag.String("machine", "Hydra", "machine model")
	procs := flag.Int("procs", 64, "number of processes")
	colls := flag.String("colls", "", "comma-separated collectives (default reduce,allreduce,alltoall)")
	size := flag.Int("size", 32*1024, "message size in bytes")
	drops := flag.String("drops", "", "comma-separated drop probabilities (default 0,0.005,0.02,0.08,0.2)")
	retries := flag.Int("retries", 0, "max retransmissions per message (0: library default)")
	reps := flag.Int("reps", 1, "benchmark repetitions per cell")
	seed := flag.Int64("seed", 1, "seed")
	watchdog := flag.Int64("watchdog", 0, "virtual-time watchdog per cell in ns (0: 60 s default)")
	workers := flag.Int("workers", 0, "max concurrent cell simulations (0: GOMAXPROCS)")
	progress := flag.Bool("progress", false, "print cell progress")
	flag.Parse()

	ctx, stop := cliutil.SignalContext()
	defer stop()

	pl, err := cliutil.Machine(*machine)
	if err != nil {
		cliutil.Usage("faultstudy", err)
	}
	if err := cliutil.CheckProcs(*procs, pl); err != nil {
		cliutil.Usage("faultstudy", err)
	}
	collectives, err := cliutil.Collectives(*colls, []coll.Collective{coll.Reduce, coll.Allreduce, coll.Alltoall})
	if err != nil {
		cliutil.Usage("faultstudy", err)
	}
	dropRates, err := cliutil.ParseFloats(*drops)
	if err != nil {
		cliutil.Usage("faultstudy", err)
	}

	res, err := expt.RunFaultStudyCtx(ctx, expt.FaultStudyConfig{
		Platform:    pl,
		Collectives: collectives,
		Procs:       *procs,
		MsgBytes:    *size,
		DropRates:   dropRates,
		MaxRetries:  *retries,
		Seed:        *seed,
		Reps:        *reps,
		WatchdogNs:  *watchdog,
		Runner:      cliutil.Engine(*workers),
		Progress:    cliutil.ProgressPrinter(os.Stderr, "faultstudy", *progress),
	})
	if err != nil {
		cliutil.Fatal("faultstudy", err)
	}
	fmt.Print(res.Format())
}
