// Command simstudy reproduces the paper's Fig. 4 simulation study: for each
// message size and arrival pattern, which collective algorithm is best, and
// how much faster is it than the algorithm a synchronized (no-delay)
// micro-benchmark would have chosen?
//
// Usage:
//
//	simstudy -coll reduce -procs 1024
//	simstudy -coll alltoall -procs 256 -sizes 8,1024,32768
package main

import (
	"flag"
	"fmt"
	"os"

	"collsel/internal/cliutil"
	"collsel/internal/expt"
	"collsel/internal/netmodel"
)

func main() {
	collName := flag.String("coll", "reduce", "collective: reduce, allreduce, alltoall, bcast")
	procs := flag.Int("procs", 256, "number of processes (paper: 1024)")
	sizes := flag.String("sizes", "", "comma-separated message sizes in bytes (default: 2,16,256,1024,16384,262144,1048576)")
	factor := flag.Float64("factor", 1.5, "skew factor on the average no-delay runtime")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "concurrent cell simulations (0 = GOMAXPROCS); results are identical at any value")
	progress := flag.Bool("progress", false, "print per-cell progress to stderr")
	flag.Parse()

	ctx, stop := cliutil.SignalContext()
	defer stop()

	c, err := cliutil.Collective(*collName)
	if err != nil {
		cliutil.Usage("simstudy", err)
	}
	if err := cliutil.CheckProcs(*procs, netmodel.SimCluster()); err != nil {
		cliutil.Usage("simstudy", err)
	}
	msgSizes, err := cliutil.ParseSizes(*sizes)
	if err != nil {
		cliutil.Usage("simstudy", err)
	}
	res, err := expt.RunFig4Ctx(ctx, expt.Fig4Config{
		Collective: c,
		Procs:      *procs,
		MsgSizes:   msgSizes,
		Factor:     *factor,
		Seed:       *seed,
		Runner:     cliutil.Engine(*workers),
		Progress:   cliutil.ProgressPrinter(os.Stderr, "simstudy", *progress),
	})
	if err != nil {
		cliutil.Fatal("simstudy", err)
	}
	fmt.Print(res.Format())
}
