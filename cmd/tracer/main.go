// Command tracer reproduces the paper's Fig. 1: run the FT proxy with the
// collective tracing library attached, then print each process's average
// delay relative to the first arrival across all MPI_Alltoall calls, and
// optionally write the resulting arrival pattern (the FT-Scenario) to a
// pattern file for replay with collbench/apgen tooling.
//
// Usage:
//
//	tracer -machine Galileo100 -procs 256
//	tracer -machine Hydra -out ft_hydra.pattern -sample-every 2
package main

import (
	"flag"
	"fmt"
	"os"

	"collsel/internal/apps/ft"
	"collsel/internal/cliutil"
	"collsel/internal/coll"
	"collsel/internal/expt"
	"collsel/internal/trace"
)

func main() {
	machine := flag.String("machine", "Galileo100", "machine model")
	procs := flag.Int("procs", 256, "number of processes")
	class := flag.String("class", "C", "FT problem class")
	algID := flag.Int("alg", 2, "Alltoall algorithm ID (Table II)")
	sampleEvery := flag.Int("sample-every", 1, "record every k-th collective call")
	out := flag.String("out", "", "write the FT-Scenario pattern to this file")
	gantt := flag.Int("gantt", -1, "render this call number as a per-rank timeline (Fig. 2 style; -1 = off)")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	pl, err := cliutil.Machine(*machine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracer: %v\n", err)
		os.Exit(2)
	}
	if err := cliutil.CheckProcs(*procs, pl); err != nil {
		fmt.Fprintf(os.Stderr, "tracer: %v\n", err)
		os.Exit(2)
	}
	cl, ok := ft.ClassByName(*class)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracer: unknown class %q\n", *class)
		os.Exit(2)
	}
	al, ok := coll.ByID(coll.Alltoall, *algID)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracer: unknown alltoall algorithm %d\n", *algID)
		os.Exit(2)
	}
	tr := trace.New(*procs)
	tr.SampleEvery = *sampleEvery
	res, err := ft.Run(ft.Config{
		Platform:    pl,
		Procs:       *procs,
		Seed:        *seed,
		Class:       cl,
		AlltoallAlg: al,
		Tracer:      tr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracer: %v\n", err)
		os.Exit(1)
	}
	scenario, err := tr.Scenario("ft_scenario", coll.Alltoall)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracer: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("FT class %s on %s, %d procs, alltoall=%s: runtime %.3f s, %d alltoall calls traced, per-pair %d B\n",
		cl.Name, pl.Name, *procs, al.Name, res.RuntimeSec, tr.NumCalls(coll.Alltoall), res.MsgBytesPerPair)
	fmt.Printf("max observed arrival skew: %d ns\n\n", tr.MaxSkewNs(coll.Alltoall))
	fmt.Println("avg. process delay across all MPI_Alltoall calls (Fig. 1):")
	fmt.Print(expt.SparkLine(scenario))
	if *gantt >= 0 {
		calls := tr.Calls(coll.Alltoall)
		if *gantt >= len(calls) {
			fmt.Fprintf(os.Stderr, "tracer: only %d calls recorded\n", len(calls))
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(trace.Gantt(calls[*gantt], 80, 32))
	}
	if *out != "" {
		if err := scenario.WriteFile(*out); err != nil {
			fmt.Fprintf(os.Stderr, "tracer: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote FT-Scenario pattern to %s\n", *out)
	}
}
