// Command modelcheck validates the analytical model tier against the
// simulator: for every (collective, message size) cell it runs both the
// closed-form model ranking (internal/model) and the full simulated
// selection (expt.SelectRobustCtx) over the same candidate set, and
// reports the Spearman rank correlation between the two robustness-score
// orderings. A mean per-collective correlation below the floor fails the
// run — this is the CI tripwire that catches model drift before it
// reaches production "source":"model" answers.
//
// Usage:
//
//	modelcheck -machine SimCluster -procs 8
//	modelcheck -machine Hydra -colls bcast,allreduce -sizes 64,16384 -floor 0.6
package main

import (
	"flag"
	"fmt"
	"os"

	"collsel/internal/cliutil"
	"collsel/internal/coll"
	"collsel/internal/expt"
	"collsel/internal/model"
	"collsel/internal/stats"
)

func main() {
	machine := flag.String("machine", "SimCluster", "machine model to validate on")
	colls := flag.String("colls", "", "comma-separated collectives (default: every registered collective)")
	procsFlag := flag.Int("procs", 8, "communicator size")
	sizes := flag.String("sizes", "", "comma-separated message sizes in bytes (default: 8,64,1024,16384,262144,1048576)")
	seed := flag.Int64("seed", 1, "simulation seed")
	factor := flag.Float64("factor", 1.0, "skew factor on the average no-delay runtime")
	floor := flag.Float64("floor", 0.7, "minimum acceptable mean Spearman correlation per collective")
	workers := flag.Int("workers", 0, "concurrent cell simulations (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print per-cell model and simulation scores")
	flag.Parse()

	ctx, stop := cliutil.SignalContext()
	defer stop()

	pl, err := cliutil.Machine(*machine)
	if err != nil {
		cliutil.Usage("modelcheck", err)
	}
	if err := cliutil.CheckProcs(*procsFlag, pl); err != nil {
		cliutil.Usage("modelcheck", err)
	}
	allColls := []coll.Collective{
		coll.Reduce, coll.Allreduce, coll.Alltoall, coll.Bcast, coll.Allgather,
		coll.Gather, coll.Scatter, coll.Barrier, coll.ReduceScatter, coll.Alltoallv,
	}
	collectives, err := cliutil.Collectives(*colls, allColls)
	if err != nil {
		cliutil.Usage("modelcheck", err)
	}
	msgSizes, err := cliutil.ParseSizes(*sizes)
	if err != nil {
		cliutil.Usage("modelcheck", fmt.Errorf("bad -sizes: %v", err))
	}
	if len(msgSizes) == 0 {
		msgSizes = []int{8, 64, 1024, 16 * 1024, 256 * 1024, 1024 * 1024}
	}
	eng := cliutil.Engine(*workers)

	failed := false
	for _, c := range collectives {
		algs := model.Candidates(c)
		var sum float64
		n := 0
		fmt.Printf("%-14s", c.String())
		for _, m := range msgSizes {
			// Barrier has no message payload; one size covers it.
			if c == coll.Barrier && n > 0 {
				break
			}
			mod, err := model.Select(model.Spec{
				Platform:   pl,
				Collective: c,
				MsgBytes:   m,
				Procs:      *procsFlag,
				Factor:     *factor,
				Seed:       *seed,
				Algorithms: algs,
			})
			if err != nil {
				cliutil.Fatal("modelcheck", err)
			}
			sim, err := expt.SelectRobustCtx(ctx, expt.SelectSpec{
				Platform:   pl,
				Collective: c,
				MsgBytes:   m,
				Procs:      *procsFlag,
				Factor:     *factor,
				Seed:       *seed,
				Algorithms: algs,
				Runner:     eng,
			})
			if err != nil {
				cliutil.Fatal("modelcheck", err)
			}
			rho := rankCorrelation(algs, mod, sim)
			sum += rho
			n++
			fmt.Printf("  %8.3f", rho)
			if *verbose {
				fmt.Printf("\n    size %d:\n", m)
				ms := map[string]float64{}
				for _, ch := range mod.Ranking {
					ms[ch.Algorithm.Name] = ch.Score
				}
				for _, ch := range sim.Ranking {
					fmt.Printf("      %-22s sim %8.4f  model %8.4f\n", ch.Algorithm.Name, ch.Score, ms[ch.Algorithm.Name])
				}
			}
		}
		mean := sum / float64(n)
		mark := "ok"
		if mean < *floor {
			mark = "FAIL"
			failed = true
		}
		fmt.Printf("  | mean %6.3f  %s\n", mean, mark)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "modelcheck: mean Spearman below floor %.2f for at least one collective\n", *floor)
		os.Exit(1)
	}
}

// rankCorrelation aligns both rankings by candidate order and correlates
// the robustness scores. Scores — not positions — go into Spearman: it
// ranks internally, and ties (algorithms the selection genuinely cannot
// distinguish) are then handled by its midrank convention on both sides.
func rankCorrelation(algs []coll.Algorithm, mod *model.Outcome, sim *expt.SelectOutcome) float64 {
	modScore := map[string]float64{}
	for _, ch := range mod.Ranking {
		modScore[ch.Algorithm.Name] = ch.Score
	}
	simScore := map[string]float64{}
	for _, ch := range sim.Ranking {
		simScore[ch.Algorithm.Name] = ch.Score
	}
	a := make([]float64, 0, len(algs))
	b := make([]float64, 0, len(algs))
	for _, al := range algs {
		ma, okA := modScore[al.Name]
		sb, okB := simScore[al.Name]
		if !okA || !okB {
			continue // excluded by a degraded simulation; skip the pair
		}
		a = append(a, ma)
		b = append(b, sb)
	}
	return stats.Spearman(a, b)
}
