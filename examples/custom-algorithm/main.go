// Custom algorithm: register a user-defined Alltoall implementation and
// evaluate it with the library's pattern-aware methodology against the
// built-in Open MPI algorithms. The custom schedule here is a simple
// "spread linear": like basic linear, but each rank staggers its send
// order by its own rank so that no destination is hit by everyone at once
// — a folk remedy for incast that the robustness analysis can judge.
package main

import (
	"fmt"
	"log"

	"collsel"
)

// spreadLinearAlltoall posts all receives, then sends to destinations in a
// rank-rotated order with a small pipeline window.
func spreadLinearAlltoall(a *collsel.Args) ([]float64, error) {
	r := a.R
	p, me := r.Size(), r.ID()
	res := make([]float64, p*a.Count)
	copy(res[me*a.Count:(me+1)*a.Count], a.Data[me*a.Count:(me+1)*a.Count])

	type pendingRecv struct {
		src int
		req *collsel.Request
	}
	recvs := make([]pendingRecv, 0, p-1)
	for i := 1; i < p; i++ {
		src := (me + i) % p
		recvs = append(recvs, pendingRecv{src, r.Irecv(src, a.Tag)})
	}
	// Rotated send order with window 4.
	var window []*collsel.Request
	for i := 1; i < p; i++ {
		dst := (me + i) % p
		chunk := make([]float64, a.Count)
		copy(chunk, a.Data[dst*a.Count:(dst+1)*a.Count])
		window = append(window, r.Isend(dst, a.Tag, chunk, a.Bytes(a.Count)))
		if len(window) > 4 {
			window[0].Wait()
			window = window[1:]
		}
	}
	for _, q := range window {
		q.Wait()
	}
	for _, pr := range recvs {
		m := pr.req.Wait()
		copy(res[pr.src*a.Count:(pr.src+1)*a.Count], m.Data)
	}
	return res, nil
}

func main() {
	err := collsel.RegisterAlgorithm(collsel.Algorithm{
		Coll:   collsel.Alltoall,
		Name:   "spread_linear",
		Abbrev: "Spread",
		Run:    spreadLinearAlltoall,
	})
	if err != nil {
		log.Fatal(err)
	}

	machine := collsel.Hydra()
	algs := append(collsel.TableII(collsel.Alltoall), mustByName(collsel.Alltoall, "spread_linear"))

	m, noDelay, err := collsel.BuildMatrix(collsel.GridConfig{
		Platform:   machine,
		Procs:      96,
		Algorithms: algs,
		Shapes:     collsel.ArtificialShapes(),
		MsgBytes:   32768,
		Policy:     collsel.SkewAvgRuntime,
		Reps:       3,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Alltoall on %s, 32 KiB per pair, 96 procs\n\n", machine.Name)
	fmt.Printf("%-16s  %-14s  %s\n", "algorithm", "no-delay d-hat", "robustness score")
	ranking, err := m.SelectRobust()
	if err != nil {
		log.Fatal(err)
	}
	scoreOf := map[string]float64{}
	for _, ch := range ranking {
		scoreOf[ch.Algorithm.Name] = ch.Score
	}
	for j, al := range algs {
		fmt.Printf("%-16s  %10.1f us  %.3f\n", al.Name, noDelay[j]/1000, scoreOf[al.Name])
	}
	fmt.Printf("\nmost robust: %s\n", ranking[0].Algorithm.Name)
}

func mustByName(c collsel.Collective, name string) collsel.Algorithm {
	al, ok := collsel.AlgorithmByName(c, name)
	if !ok {
		log.Fatalf("%s not found", name)
	}
	return al
}
