// DL training: evaluate Allreduce algorithms inside a data-parallel
// training proxy with imbalanced gradient computation — the workload class
// the paper's motivation cites as a major source of process arrival
// imbalance. Compares the built-in Open MPI set with the two-level
// (SMP-aware) and arrival-ordered (PAP-aware) extension algorithms.
package main

import (
	"fmt"
	"log"

	"collsel"
)

func main() {
	machine := collsel.Discoverer()
	const procs = 128

	names := []string{"recursive_doubling", "ring", "segmented_ring", "rabenseifner", "two_level", "arrival_redbcast"}
	fmt.Printf("Gradient Allreduce (4 MiB) in imbalanced training on %s, %d ranks\n\n", machine.Name, procs)
	fmt.Printf("%-20s  %-12s  %-14s  %s\n", "algorithm", "runtime", "step mean", "allreduce share")
	for _, name := range names {
		al, ok := collsel.AlgorithmByName(collsel.Allreduce, name)
		if !ok {
			log.Fatalf("%s not registered", name)
		}
		res, err := collsel.RunTraining(collsel.TrainConfig{
			Platform:     machine,
			Procs:        procs,
			Seed:         11,
			Iterations:   20,
			GradBytes:    4 << 20,
			AllreduceAlg: al,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s  %9.4f s  %11.2f ms  %13.0f%%\n",
			name, res.RuntimeSec, res.StepSecMean*1000, 100*res.CommFraction)
	}
}
