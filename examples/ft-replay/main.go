// FT replay: trace the arrival patterns of the NAS-FT proxy with the
// PMPI-style tracer (the paper's Fig. 1 methodology), extract the
// FT-Scenario pattern, and replay it in Alltoall micro-benchmarks to see
// which algorithm copes best with the application's real imbalance
// (Sec. V-B of the paper).
package main

import (
	"fmt"
	"log"

	"collsel"
)

func main() {
	machine := collsel.Hydra()
	const procs = 128

	// A small FT geometry that keeps this example quick; per-pair message
	// size is 16*N/p^2 bytes.
	class := collsel.FTClass{Name: "demo", NX: 256, NY: 256, NZ: 128, Iterations: 6}

	// 1. Run FT with the tracer attached (clocks are HCA-synchronized
	//    before tracing, as in the paper).
	tracer := collsel.NewTracer(procs)
	pairwise, _ := collsel.AlgorithmByID(collsel.Alltoall, 2)
	res, err := collsel.RunFT(collsel.FTConfig{
		Platform:    machine,
		Procs:       procs,
		Class:       class,
		AlltoallAlg: pairwise,
		Tracer:      tracer,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FT on %s: %.3f s, %d alltoall calls, %d B per pair, alltoall share %.0f%%\n",
		machine.Name, res.RuntimeSec, res.NumAlltoalls, res.MsgBytesPerPair, 100*res.CommFraction)

	// 2. Extract the FT-Scenario: each process's average delay relative to
	//    the first arrival, over all traced MPI_Alltoall calls.
	scenario, err := tracer.Scenario("ft_scenario", collsel.Alltoall)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traced max arrival skew: %.1f us\n\n", float64(scenario.MaxSkewNs())/1000)

	// 3. Replay: benchmark every Alltoall algorithm under (a) perfect
	//    synchronization and (b) the traced FT-Scenario.
	fmt.Printf("%-14s  %-14s  %-14s  %s\n", "algorithm", "no-delay d-hat", "FT-scenario", "degradation")
	for _, al := range collsel.TableII(collsel.Alltoall) {
		base := benchmark(machine, al, res.MsgBytesPerPair, procs, collsel.Pattern{})
		replay := benchmark(machine, al, res.MsgBytesPerPair, procs, scenario)
		fmt.Printf("%d:%-12s  %10.1f us  %10.1f us  %.2fx\n",
			al.ID, al.Abbrev, base/1000, replay/1000, replay/base)
	}
}

func benchmark(machine *collsel.Platform, al collsel.Algorithm, msgBytes, procs int, pat collsel.Pattern) float64 {
	count, elemSize := msgBytes/8, 8
	if msgBytes > 1024 && msgBytes%128 == 0 {
		count, elemSize = 128, msgBytes/128
	}
	res, err := collsel.RunBenchmark(collsel.BenchConfig{
		Platform:  machine,
		Procs:     procs,
		Algorithm: al,
		Count:     count,
		ElemSize:  elemSize,
		Pattern:   pat,
		Reps:      3,
		Seed:      11,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.LastDelay.Mean
}
