// Alltoall tuning: the paper's headline workflow. Benchmark all four Open
// MPI Alltoall algorithms (Table II) under the eight artificial arrival
// patterns on a modelled production machine, and compare the robust
// (pattern-aware) selection against the conventional synchronized-benchmark
// choice. This is the scenario of the paper's Section V: the message size
// is NAS FT's 32768 B per pair.
package main

import (
	"fmt"
	"log"

	"collsel"
)

func main() {
	machine := collsel.Galileo100()

	sel, err := collsel.Select(collsel.SelectConfig{
		Machine:    machine,
		Collective: collsel.Alltoall,
		MsgBytes:   32768,
		Procs:      128,
		Reps:       3,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Alltoall algorithm selection on %s (32 KiB per pair, 128 procs)\n\n", machine.Name)

	// The full measurement grid, row-normalized as in the paper's Fig. 8.
	norm := sel.Matrix.Normalized()
	fmt.Printf("%-15s", "pattern")
	for _, al := range sel.Matrix.Algorithms {
		fmt.Printf("  %d:%-8s", al.ID, al.Abbrev)
	}
	fmt.Println()
	for i, pat := range sel.Matrix.Patterns {
		fmt.Printf("%-15s", pat)
		for j := range sel.Matrix.Algorithms {
			fmt.Printf("  %-10.2f", norm[i][j])
		}
		fmt.Println()
	}
	fmt.Printf("%-15s", "Average")
	for _, v := range sel.Matrix.AvgNormalized() {
		fmt.Printf("  %-10.2f", v)
	}
	fmt.Println()

	fmt.Printf("\nconventional choice (no-delay fastest): %s\n", sel.ConventionalChoice.Name)
	fmt.Printf("pattern-robust recommendation:          %s\n", sel.Recommended.Name)
	fmt.Println("\nranking by robustness score (1.0 = fastest under every pattern):")
	for i, ch := range sel.Ranking {
		fmt.Printf("  %d. %-14s %.3f\n", i+1, ch.Algorithm.Name, ch.Score)
	}
}
