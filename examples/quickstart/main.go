// Quickstart: benchmark one collective algorithm under one arrival pattern
// and print the paper's two metrics (total delay d* and last delay d-hat).
package main

import (
	"fmt"
	"log"

	"collsel"
)

func main() {
	machine := collsel.Hydra()

	// The algorithm under test: Open MPI's binomial-tree MPI_Reduce
	// (Table II id 5).
	binomial, ok := collsel.AlgorithmByID(collsel.Reduce, 5)
	if !ok {
		log.Fatal("binomial reduce not registered")
	}

	// A "last process delayed" arrival pattern with 500 us of skew across
	// 64 processes.
	pat := collsel.GeneratePattern(collsel.LastDelayed, 64, 500_000, 1)

	res, err := collsel.RunBenchmark(collsel.BenchConfig{
		Platform:  machine,
		Procs:     64,
		Algorithm: binomial,
		Count:     128, // x 8 B elements = 1 KiB message
		Pattern:   pat,
		Reps:      5,
		Seed:      42,
		Validate:  true, // cross-check that the reduction really sums
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine:      %s\n", machine.Name)
	fmt.Printf("algorithm:    %s\n", res.Algorithm.Name)
	fmt.Printf("pattern:      %s (max skew %d ns)\n", res.Pattern, res.MaxSkewNs)
	fmt.Printf("message size: %d B, %d procs, %d reps\n", res.MsgBytes(), res.Procs, len(res.Reps))
	fmt.Printf("total delay d*:   %.1f us (mean)\n", res.TotalDelay.Mean/1000)
	fmt.Printf("last delay d-hat: %.1f us (mean), %.1f us (median)\n",
		res.LastDelay.Mean/1000, res.LastDelay.Median/1000)

	// Compare against the perfectly synchronized baseline.
	noDelay, err := collsel.RunBenchmark(collsel.BenchConfig{
		Platform:  machine,
		Procs:     64,
		Algorithm: binomial,
		Count:     128,
		Reps:      5,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nno-delay d-hat:   %.1f us (mean)\n", noDelay.LastDelay.Mean/1000)
	fmt.Printf("slowdown from the arrival pattern: %.2fx\n",
		res.LastDelay.Mean/noDelay.LastDelay.Mean)
}
