module collsel

go 1.23

// Pinned for reproducible analyzer behavior (ISSUE 5): this exact snapshot
// is vendored under vendor/golang.org/x/tools (the subset needed by
// cmd/collsellint), so builds never depend on network module resolution.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
