module collsel

go 1.22
