package collsel_test

// Tests of the context-aware selection API: functional options, the
// Factor/Warmup plumbing into the measurement grid, parallelism
// determinism and cancellation.

import (
	"context"
	"errors"
	"testing"

	"collsel"
)

// fastSelect is a small deterministic selection config (noiseless
// SimCluster, perfect clocks) used by the API tests.
func fastSelect() collsel.SelectConfig {
	return collsel.SelectConfig{
		Machine:    collsel.SimCluster(),
		Collective: collsel.Alltoall,
		MsgBytes:   1024,
		Procs:      16,
		Seed:       3,
	}
}

func TestSelectCtxMatchesSelect(t *testing.T) {
	a, err := collsel.Select(fastSelect())
	if err != nil {
		t.Fatal(err)
	}
	b, err := collsel.SelectCtx(context.Background(), fastSelect())
	if err != nil {
		t.Fatal(err)
	}
	if a.Recommended.Name != b.Recommended.Name {
		t.Errorf("SelectCtx picked %s, Select picked %s", b.Recommended.Name, a.Recommended.Name)
	}
	for i := range a.Matrix.ValueNs {
		for j := range a.Matrix.ValueNs[i] {
			if a.Matrix.ValueNs[i][j] != b.Matrix.ValueNs[i][j] {
				t.Fatalf("matrix cell (%d,%d) differs between Select and SelectCtx", i, j)
			}
		}
	}
}

func TestSelectCtxOptionsOverrideConfig(t *testing.T) {
	cfg := fastSelect()
	cfg.Seed = 1
	cfg.Reps = 1
	var got collsel.SelectConfig = cfg
	for _, o := range []collsel.Option{
		collsel.WithReps(4),
		collsel.WithWarmup(2),
		collsel.WithSeed(9),
		collsel.WithFactor(1.5),
		collsel.WithParallelism(3),
	} {
		o(&got)
	}
	if got.Reps != 4 || got.Warmup != 2 || got.Seed != 9 || got.Factor != 1.5 || got.Workers != 3 {
		t.Errorf("options not applied: %+v", got)
	}
}

// The paper's skew factors (0.5/1.0/1.5) must actually reach the grid:
// different factors change the generated patterns and therefore the
// measured matrix. Before the Factor plumbing fix, both calls produced
// identical matrices.
func TestSelectCtxFactorReachesGrid(t *testing.T) {
	small, err := collsel.SelectCtx(context.Background(), fastSelect(), collsel.WithFactor(0.5))
	if err != nil {
		t.Fatal(err)
	}
	large, err := collsel.SelectCtx(context.Background(), fastSelect(), collsel.WithFactor(1.5))
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := range small.Matrix.ValueNs {
		for j := range small.Matrix.ValueNs[i] {
			if small.Matrix.ValueNs[i][j] != large.Matrix.ValueNs[i][j] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("factor 0.5 and 1.5 produced identical matrices; Factor is not plumbed through")
	}
	// The no-delay row is factor-independent by construction.
	for j := range small.Matrix.ValueNs[0] {
		if small.Matrix.ValueNs[0][j] != large.Matrix.ValueNs[0][j] {
			t.Error("no-delay row changed with the skew factor")
		}
	}
}

func TestSelectCtxParallelismBitIdentical(t *testing.T) {
	serial, err := collsel.SelectCtx(context.Background(), fastSelect(), collsel.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := collsel.SelectCtx(context.Background(), fastSelect(), collsel.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Matrix.ValueNs {
		for j := range serial.Matrix.ValueNs[i] {
			if serial.Matrix.ValueNs[i][j] != parallel.Matrix.ValueNs[i][j] {
				t.Fatalf("cell (%d,%d) differs between parallelism 1 and 4", i, j)
			}
		}
	}
}

func TestSelectCtxProgress(t *testing.T) {
	calls, lastDone, lastTotal := 0, 0, 0
	_, err := collsel.SelectCtx(context.Background(), fastSelect(),
		collsel.WithProgress(func(done, total int) { calls++; lastDone, lastTotal = done, total }))
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	if lastDone != lastTotal || lastTotal == 0 {
		t.Errorf("final progress %d/%d, want done == total > 0", lastDone, lastTotal)
	}
}

func TestSelectCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := fastSelect()
	cfg.Seed = 4242 // unlikely to be in the process-wide cache already
	if _, err := collsel.SelectCtx(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSelectWarmupReachesGrid(t *testing.T) {
	// On a noisy machine, warmup repetitions shift which repetitions enter
	// the statistics, so Warmup must change the result.
	cfg := collsel.SelectConfig{
		Machine:    collsel.Hydra(),
		Collective: collsel.Alltoall,
		MsgBytes:   1024,
		Procs:      8,
		Seed:       5,
		Reps:       2,
	}
	plain, err := collsel.SelectCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmed, err := collsel.SelectCtx(context.Background(), cfg, collsel.WithWarmup(2))
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := range plain.Matrix.ValueNs {
		for j := range plain.Matrix.ValueNs[i] {
			if plain.Matrix.ValueNs[i][j] != warmed.Matrix.ValueNs[i][j] {
				differs = true
			}
		}
	}
	if !differs {
		t.Error("Warmup had no effect on a noisy machine; Warmup is not plumbed through")
	}
}
