// Package collsel is an arrival-pattern-aware selection toolkit for MPI
// collective algorithms, reproducing "MPI Collective Algorithm Selection in
// the Presence of Process Arrival Patterns" (Salimi Beni, Cosenza, Hunold;
// IEEE CLUSTER 2024) as a self-contained Go library.
//
// Everything runs on a deterministic discrete-event simulation of a
// hierarchical compute cluster: an MPI-like runtime with eager/rendezvous
// point-to-point messaging, the Open MPI 4.1.x collective algorithms of the
// paper's Table II, imperfect per-process clocks with HCA-style
// synchronization, machine noise models, a PMPI-style collective tracer and
// an NAS-FT proxy application.
//
// The package exposes the high-level workflow:
//
//	machine := collsel.Hydra()
//	sel, err := collsel.Select(collsel.SelectConfig{
//	    Machine: machine, Collective: collsel.Alltoall,
//	    MsgBytes: 32768, Procs: 256,
//	})
//	fmt.Println("use", sel.Recommended.Name) // robust across arrival patterns
//
// and re-exports the underlying building blocks (platforms, patterns,
// algorithms, the micro-benchmark harness, the measurement matrix and the
// FT proxy) for finer-grained use; see the examples/ directory.
package collsel

import (
	"context"
	"time"

	"collsel/internal/apps/dltrain"
	"collsel/internal/apps/ft"
	"collsel/internal/coll"
	"collsel/internal/core"
	"collsel/internal/decision"
	"collsel/internal/expt"
	"collsel/internal/fault"
	"collsel/internal/microbench"
	"collsel/internal/model"
	"collsel/internal/mpi"
	"collsel/internal/netmodel"
	_ "collsel/internal/papaware" // register the PAP-aware extension algorithms
	"collsel/internal/pattern"
	"collsel/internal/runner"
	"collsel/internal/sim"
	"collsel/internal/trace"
	"collsel/internal/tuning"
)

// --- Platforms ---------------------------------------------------------------

// Platform describes a simulated parallel machine.
type Platform = netmodel.Platform

// Link is one latency/bandwidth tier of a platform's network.
type Link = netmodel.Link

// NoiseProfile parameterizes a machine's system noise.
type NoiseProfile = netmodel.NoiseProfile

// ClockProfile parameterizes local-clock imperfection.
type ClockProfile = netmodel.ClockProfile

// Machine presets (see internal/netmodel for the parameter rationale).
var (
	SimCluster = netmodel.SimCluster
	Hydra      = netmodel.Hydra
	Galileo100 = netmodel.Galileo100
	Discoverer = netmodel.Discoverer
)

// MachineByName resolves a preset platform ("Hydra", "Galileo100",
// "Discoverer", "SimCluster"); nil if unknown.
func MachineByName(name string) *Platform { return netmodel.ByName(name) }

// Machines returns all built-in platforms.
func Machines() []*Platform { return netmodel.Presets() }

// --- Collectives and algorithms ------------------------------------------------

// Collective enumerates the supported operations.
type Collective = coll.Collective

// Supported collectives.
const (
	Reduce        = coll.Reduce
	Allreduce     = coll.Allreduce
	Alltoall      = coll.Alltoall
	Bcast         = coll.Bcast
	Allgather     = coll.Allgather
	Gather        = coll.Gather
	Scatter       = coll.Scatter
	Barrier       = coll.Barrier
	ReduceScatter = coll.ReduceScatter
	Alltoallv     = coll.Alltoallv
)

// Algorithm is one collective implementation; Args is a rank's invocation
// view (used when writing custom algorithms).
type (
	Algorithm = coll.Algorithm
	Args      = coll.Args
)

// Rank, Request and Message expose the MPI-like runtime surface needed to
// implement custom collective algorithms (Send/Recv/Isend/Irecv/Sendrecv,
// Wtime, Compute).
type (
	Rank    = mpi.Rank
	Request = mpi.Request
	Message = mpi.Message
)

// Algorithm registry access.
var (
	// Algorithms returns all registered algorithms of a collective.
	Algorithms = coll.Algorithms
	// TableII returns the Open MPI Table II algorithms, ascending by ID.
	TableII = coll.TableII
	// AlgorithmByID resolves a Table II algorithm id.
	AlgorithmByID = coll.ByID
	// AlgorithmByName resolves a canonical or SimGrid algorithm name.
	AlgorithmByName = coll.ByName
	// RegisterAlgorithm adds a user-defined algorithm to the registry.
	RegisterAlgorithm = coll.Register
)

// --- Arrival patterns ------------------------------------------------------------

// Shape identifies an arrival-pattern shape; Pattern is a concrete
// per-process delay vector.
type (
	Shape   = pattern.Shape
	Pattern = pattern.Pattern
)

// The pattern shapes of the paper's Fig. 3 (plus the NoDelay baseline).
const (
	NoDelay      = pattern.NoDelay
	Ascending    = pattern.Ascending
	Descending   = pattern.Descending
	LastDelayed  = pattern.LastDelayed
	FirstDelayed = pattern.FirstDelayed
	RandomShape  = pattern.Random
	VShape       = pattern.VShape
	InverseV     = pattern.InverseV
	HalfDelayed  = pattern.HalfDelayed
)

// Pattern construction and I/O.
var (
	// GeneratePattern materializes (shape, procs, maxSkewNs, seed).
	GeneratePattern = pattern.Generate
	// PatternFromDelays wraps measured per-process delays.
	PatternFromDelays = pattern.FromDelays
	// ReadPatternFile parses a one-line-per-process pattern file.
	ReadPatternFile = pattern.ReadFile
	// ArtificialShapes returns the paper's eight artificial shapes.
	ArtificialShapes = pattern.ArtificialShapes
	// AllShapes returns NoDelay plus the eight artificial shapes.
	AllShapes = pattern.AllShapes
)

// --- Micro-benchmarking ------------------------------------------------------------

// BenchConfig configures a single micro-benchmark run (one algorithm, one
// message size, one pattern), following the paper's Listing 1 methodology.
type BenchConfig = microbench.Config

// BenchResult aggregates a run's repetitions; LastDelay is the d-hat metric.
type BenchResult = microbench.Result

// RunBenchmark executes one micro-benchmark.
var RunBenchmark = microbench.Run

// --- Measurement matrix and selection ------------------------------------------------

// Matrix is a pattern x algorithm table of mean last-delay measurements,
// with the paper's analyses (optimization potential, robustness classes,
// normalized scores, runtime prediction) as methods.
type Matrix = core.Matrix

// Choice is a ranked algorithm with its robustness score.
type Choice = core.Choice

// Prediction is an estimated application runtime (Fig. 9 estimator).
type Prediction = core.Prediction

// GridConfig describes a full pattern x algorithm measurement grid;
// BuildMatrix measures it.
type GridConfig = expt.GridConfig

// Skew-magnitude policies for BuildMatrix.
const (
	SkewAvgRuntime   = expt.SkewAvgRuntime
	SkewPerAlgorithm = expt.SkewPerAlgorithm
	SkewFixed        = expt.SkewFixed
)

// BuildMatrix measures a full grid and returns the matrix plus the
// per-algorithm no-delay runtimes. BuildMatrixCtx adds cancellation; both
// execute cells on the parallel memoizing grid engine, with results
// bit-identical at any worker count. BuildMatrixDegraded keeps going past
// failed cells (crashes, exhausted retransmissions, watchdog trips) and
// reports them instead of aborting.
var (
	BuildMatrix         = expt.BuildMatrix
	BuildMatrixCtx      = expt.BuildMatrixCtx
	BuildMatrixDegraded = expt.BuildMatrixDegraded
)

// --- Fault injection --------------------------------------------------------------------

// FaultProfile configures deterministic fault injection: message drops with
// retransmission, transient link degradation, stragglers and rank crashes.
// The zero value disables injection entirely.
type FaultProfile = fault.Profile

// Fault-event channels identify which transport message class a drop
// decision applies to (used by custom analyses of fault plans).
const (
	FaultChannelEager = fault.ChannelEager
	FaultChannelRTS   = fault.ChannelRTS
	FaultChannelData  = fault.ChannelData
)

// FaultPlan is a materialized per-platform fault schedule; NewFaultPlan
// derives one deterministically from (platform, size, seed, profile).
type FaultPlan = fault.Plan

// NewFaultPlan builds the deterministic fault schedule a world with this
// configuration would use (nil when the profile is disabled).
var NewFaultPlan = fault.NewPlan

// FaultError is the typed failure surfaced when a rank crashes or a message
// exhausts its retransmission budget.
type FaultError = mpi.FaultError

// DegradedReport summarizes the failed cells of a fault-tolerant grid
// build; DegradedCell is one entry.
type (
	DegradedReport = expt.DegradedReport
	DegradedCell   = expt.DegradedCell
)

// --- Tracing and the FT proxy ---------------------------------------------------------

// Tracer is the PMPI-style collective tracer.
type Tracer = trace.Tracer

// NewTracer creates a tracer for procs ranks.
var NewTracer = trace.New

// FTConfig and FTResult parameterize the NAS-FT proxy application.
type (
	FTConfig = ft.Config
	FTResult = ft.Result
	FTClass  = ft.Class
)

// FT problem classes and runner.
var (
	FTClassA = ft.ClassA
	FTClassB = ft.ClassB
	FTClassC = ft.ClassC
	FTClassD = ft.ClassD
	RunFT    = ft.Run
)

// TrainConfig and TrainResult parameterize the data-parallel training
// proxy (imbalanced gradient compute + Allreduce per step).
type (
	TrainConfig = dltrain.Config
	TrainResult = dltrain.Result
)

// RunTraining executes the training proxy.
var RunTraining = dltrain.Run

// AsyncOp is the handle of a non-blocking collective; IstartCollective
// launches one on a progress actor that overlaps the caller's computation
// while sharing the rank's network ports.
type AsyncOp = mpi.AsyncOp

// IstartCollective starts a collective algorithm non-blockingly
// (MPI_Icollective semantics).
var IstartCollective = coll.Istart

// --- Baselines, strategies, tuning tables ----------------------------------------------

// LibraryDefault returns the algorithm an Open MPI-style fixed decision
// logic would pick for (collective, comm size, message size) — the
// deployment baseline that never sees arrival patterns.
var LibraryDefault = decision.Fixed

// Strategy identifies a selection strategy in comparisons.
type Strategy = expt.Strategy

// The three compared strategies.
const (
	StrategyDefault = expt.StrategyDefault
	StrategyNoDelay = expt.StrategyNoDelay
	StrategyRobust  = expt.StrategyRobust
)

// StrategyComparison evaluates library-default vs. no-delay-tuned vs.
// pattern-robust selection on one measurement grid.
type StrategyComparison = expt.StrategyComparison

// CompareStrategies builds a grid and evaluates the three strategies;
// CompareStrategiesCtx adds cancellation; CompareStrategiesOn evaluates
// them on an existing matrix.
var (
	CompareStrategies    = expt.CompareStrategies
	CompareStrategiesCtx = expt.CompareStrategiesCtx
	CompareStrategiesOn  = expt.CompareStrategiesOn
)

// TuningTable persists selections as a dynamic-rules-style file; see
// internal/tuning for the format.
type (
	TuningTable = tuning.Table
	TuningRule  = tuning.Rule
)

// LoadTuningTable reads and validates a tuning table file.
var LoadTuningTable = tuning.Load

// Gantt renders a traced collective call as an ASCII timeline (the
// paper's Fig. 2 visualization).
var Gantt = trace.Gantt

// TraceCall is one recorded collective invocation.
type TraceCall = trace.Call

// --- Analytical model tier -------------------------------------------------------------

// ModelSpec identifies one analytical (closed-form) selection cell and
// ModelOutcome its result; see internal/model. The model tier answers the
// same robustness question as Select in microseconds instead of
// milliseconds, trading simulation fidelity for closed-form cost
// estimates — cmd/modelcheck audits the two tiers' rank agreement.
type (
	ModelSpec    = model.Spec
	ModelOutcome = model.Outcome
)

var (
	// ModelSelect runs the paper's selection methodology on modeled costs.
	ModelSelect = model.Select
	// ModelTopK returns the model's top-k candidates in candidate order —
	// the primitive behind WithPruneTopK.
	ModelTopK = model.TopK
)

// --- High-level selection --------------------------------------------------------------

// SelectConfig parameterizes the one-call selection workflow.
type SelectConfig struct {
	// Machine is the platform model; required.
	Machine *Platform
	// Collective under selection; required.
	Collective Collective
	// MsgBytes is the message size (per pair for Alltoall); required.
	MsgBytes int
	// Procs defaults to Machine.Size().
	Procs int
	// Root rank for rooted collectives.
	Root int
	// MaxSkewNs fixes the pattern magnitude; 0 derives it from the average
	// no-delay runtime of the algorithm set (the paper's default).
	MaxSkewNs int64
	// Factor scales the derived skew magnitude when MaxSkewNs is 0 (the
	// paper studies 0.5/1.0/1.5; 0 means 1.0).
	Factor float64
	// Reps is the per-cell repetition count (default: 5 on noisy machines).
	Reps int
	// Warmup repetitions are run but excluded from the statistics.
	Warmup int
	// Seed drives the machine's noise and clocks.
	Seed int64
	// Workers bounds the number of concurrent cell simulations; 0 uses
	// GOMAXPROCS. Results are bit-identical at any worker count.
	Workers int
	// Progress, when non-nil, is called after every measured cell with
	// (done, total) over the selection's whole grid.
	Progress func(done, total int)
	// Faults configures deterministic fault injection for every measured
	// cell; the zero value disables it. Under injection the selection runs
	// in degraded mode: cells that crash, exhaust their retransmission
	// budget or trip the watchdog exclude their algorithm from the ranking
	// instead of aborting, and the Selection reports Degraded/Excluded/
	// FaultCounts.
	Faults FaultProfile
	// WatchdogNs arms each cell's virtual-time watchdog (0 disables it): a
	// simulation whose next event would exceed this virtual time is aborted
	// with a diagnostic naming every blocked rank.
	WatchdogNs int64
	// Algorithms overrides the candidate set; nil benchmarks the Table II
	// algorithms of the collective (all registered ones when the collective
	// has no Table II set).
	Algorithms []Algorithm
	// PruneTopK, when positive, lets the analytical model tier
	// (internal/model) rank the candidate set first and simulates only the
	// top K algorithms — model-guided grid pruning. 0 runs the full dense
	// sweep.
	PruneTopK int
}

// Option adjusts a SelectConfig; see SelectCtx.
type Option func(*SelectConfig)

// WithReps sets the per-cell repetition count.
func WithReps(n int) Option { return func(c *SelectConfig) { c.Reps = n } }

// WithWarmup sets the per-cell warmup repetition count.
func WithWarmup(n int) Option { return func(c *SelectConfig) { c.Warmup = n } }

// WithSeed sets the simulation seed.
func WithSeed(s int64) Option { return func(c *SelectConfig) { c.Seed = s } }

// WithFactor sets the skew factor applied to the derived pattern magnitude
// (the paper's 0.5/1.0/1.5 study).
func WithFactor(f float64) Option { return func(c *SelectConfig) { c.Factor = f } }

// WithParallelism bounds the number of concurrent cell simulations; n <= 0
// means GOMAXPROCS. The result is bit-identical at any parallelism.
func WithParallelism(n int) Option { return func(c *SelectConfig) { c.Workers = n } }

// WithProgress installs a per-cell progress callback (done, total over the
// selection's grid).
func WithProgress(fn func(done, total int)) Option {
	return func(c *SelectConfig) { c.Progress = fn }
}

// WithFaults enables deterministic fault injection with the given profile
// (and degraded-mode selection; see SelectConfig.Faults).
func WithFaults(p FaultProfile) Option { return func(c *SelectConfig) { c.Faults = p } }

// WithWatchdog arms each cell's virtual-time watchdog at d nanoseconds.
// Prefer WithWatchdogDuration, which takes a typed time.Duration.
func WithWatchdog(d int64) Option { return func(c *SelectConfig) { c.WatchdogNs = d } }

// WithWatchdogDuration arms each cell's virtual-time watchdog at d of
// simulated time. It is the typed-duration form of WithWatchdog: one
// nanosecond of time.Duration is one nanosecond of virtual time (see
// sim.FromDuration / sim.ToDuration for the conversion pair).
func WithWatchdogDuration(d time.Duration) Option {
	return func(c *SelectConfig) { c.WatchdogNs = sim.FromDuration(d) }
}

// WithAlgorithms overrides the candidate algorithm set.
func WithAlgorithms(algs ...Algorithm) Option {
	return func(c *SelectConfig) { c.Algorithms = algs }
}

// WithPruneTopK enables model-guided grid pruning: the analytical model
// tier pre-ranks the candidates and only the top k are simulated. k <= 0
// runs the full dense sweep.
func WithPruneTopK(k int) Option { return func(c *SelectConfig) { c.PruneTopK = k } }

// Selection is the outcome of the pattern-aware selection workflow.
type Selection struct {
	// Recommended is the most robust algorithm: smallest average normalized
	// runtime across the eight artificial arrival patterns.
	Recommended Algorithm
	// ConventionalChoice is what a synchronized (no-delay) micro-benchmark
	// would pick.
	ConventionalChoice Algorithm
	// Ranking lists all algorithms, best (most robust) first.
	Ranking []Choice
	// Matrix is the underlying measurement grid for further analysis. In a
	// degraded selection it is the pruned (survivors-only) matrix.
	Matrix *Matrix
	// Degraded is true when fault injection failed at least one grid cell;
	// the ranking then covers only the surviving algorithms.
	Degraded bool
	// Excluded lists the algorithms dropped from a degraded ranking because
	// at least one of their cells failed.
	Excluded []Algorithm
	// FaultCounts maps an algorithm name to its number of failed cells
	// (empty when not degraded).
	FaultCounts map[string]int
	// Report carries the per-cell failure details of a degraded selection
	// (nil when fault injection and the watchdog are disabled).
	Report *DegradedReport
}

// Select runs the paper's full selection methodology: benchmark every
// Table II algorithm of the collective under the no-delay baseline and the
// eight artificial arrival patterns, rank by average normalized runtime,
// and return the most robust choice. It is a thin wrapper around SelectCtx
// with a background context.
func Select(cfg SelectConfig) (*Selection, error) {
	return SelectCtx(context.Background(), cfg)
}

// SelectCtx is the context-aware selection entry point. Functional options
// override the corresponding SelectConfig fields:
//
//	sel, err := collsel.SelectCtx(ctx, cfg,
//	    collsel.WithReps(5), collsel.WithFactor(1.5),
//	    collsel.WithParallelism(8), collsel.WithProgress(report))
//
// The grid is measured on a worker pool (GOMAXPROCS-wide by default) with
// per-cell seeds derived from grid coordinates, so the outcome is
// bit-identical at any parallelism; finished cells are memoized in a
// process-wide cache, so repeating an identical selection is free.
//
// Cancellation is cooperative all the way down: when ctx is cancelled (or
// its deadline passes), in-flight simulation kernels abort promptly
// mid-grid rather than running their cells to completion, and the aborted
// partial results are never memoized — a retry under a live context
// recomputes them. Cancellation is wall-clock control, not cell identity:
// it can never change the bit-identical result of a completed selection.
func SelectCtx(ctx context.Context, cfg SelectConfig, opts ...Option) (*Selection, error) {
	for _, o := range opts {
		o(&cfg)
	}
	var eng *runner.Engine
	if cfg.Workers > 0 {
		// A bounded pool that still shares the process-wide cell cache.
		eng = runner.New(runner.WithWorkers(cfg.Workers), runner.WithCache(runner.DefaultCache()))
	}
	out, err := expt.SelectRobustCtx(ctx, expt.SelectSpec{
		Platform:   cfg.Machine,
		Collective: cfg.Collective,
		MsgBytes:   cfg.MsgBytes,
		Procs:      cfg.Procs,
		Root:       cfg.Root,
		MaxSkewNs:  cfg.MaxSkewNs,
		Factor:     cfg.Factor,
		Reps:       cfg.Reps,
		Warmup:     cfg.Warmup,
		Seed:       cfg.Seed,
		Faults:     cfg.Faults,
		WatchdogNs: cfg.WatchdogNs,
		Algorithms: cfg.Algorithms,
		PruneTopK:  cfg.PruneTopK,
		Runner:     eng,
		Progress:   cfg.Progress,
	})
	if err != nil {
		return nil, err
	}
	return &Selection{
		Recommended:        out.Ranking[0].Algorithm,
		ConventionalChoice: out.Conventional,
		Ranking:            out.Ranking,
		Matrix:             out.Matrix,
		Degraded:           out.Degraded,
		Excluded:           out.Excluded,
		FaultCounts:        out.FaultCounts,
		Report:             out.Report,
	}, nil
}
