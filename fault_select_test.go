package collsel_test

// Tests of the degraded-mode selection workflow: fault injection through
// SelectCtx, algorithm exclusion, worker-count determinism of faulty
// selections, and the zero-fault golden guarantee.

import (
	"context"
	"fmt"
	"testing"

	"collsel"
)

// faultySelect is fastSelect with deterministic fault injection enabled at
// a drop rate low enough that retransmission always recovers.
func faultySelect() collsel.SelectConfig {
	cfg := fastSelect()
	cfg.Faults = collsel.FaultProfile{Enabled: true, DropProb: 0.02, MaxRetries: 50}
	return cfg
}

func TestSelectWithZeroFaultProfileMatchesPlain(t *testing.T) {
	plain, err := collsel.Select(fastSelect())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastSelect()
	cfg.Faults = collsel.FaultProfile{Enabled: true} // all probabilities zero
	zeroed, err := collsel.Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if zeroed.Degraded || len(zeroed.Excluded) > 0 {
		t.Fatalf("zero-fault selection reported degradation: %+v", zeroed.Report)
	}
	if zeroed.Recommended.Name != plain.Recommended.Name {
		t.Errorf("recommendation changed: %s vs %s", zeroed.Recommended.Name, plain.Recommended.Name)
	}
	for i := range plain.Matrix.ValueNs {
		for j := range plain.Matrix.ValueNs[i] {
			if plain.Matrix.ValueNs[i][j] != zeroed.Matrix.ValueNs[i][j] {
				t.Fatalf("matrix cell (%d,%d) differs: %v vs %v",
					i, j, plain.Matrix.ValueNs[i][j], zeroed.Matrix.ValueNs[i][j])
			}
		}
	}
}

func TestFaultySelectionBitIdenticalAcrossWorkerCounts(t *testing.T) {
	var ref *collsel.Selection
	for _, workers := range []int{1, 4, 8} {
		sel, err := collsel.SelectCtx(context.Background(), faultySelect(),
			collsel.WithParallelism(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = sel
			continue
		}
		if sel.Recommended.Name != ref.Recommended.Name || sel.Degraded != ref.Degraded {
			t.Fatalf("workers=%d: selection diverged (%s/%v vs %s/%v)",
				workers, sel.Recommended.Name, sel.Degraded, ref.Recommended.Name, ref.Degraded)
		}
		for i := range ref.Matrix.ValueNs {
			for j := range ref.Matrix.ValueNs[i] {
				if sel.Matrix.ValueNs[i][j] != ref.Matrix.ValueNs[i][j] {
					t.Fatalf("workers=%d: matrix cell (%d,%d) differs", workers, i, j)
				}
			}
		}
	}
}

func TestDegradedSelectionExcludesCrashingAlgorithm(t *testing.T) {
	// A synthetic algorithm that always fails stands in for one whose cells
	// crash under fault injection.
	broken := collsel.Algorithm{
		Coll: collsel.Alltoall,
		Name: "always_broken",
		Run: func(a *collsel.Args) ([]float64, error) {
			return nil, fmt.Errorf("injected permanent failure")
		},
	}
	algs := append(collsel.TableII(collsel.Alltoall), broken)
	cfg := fastSelect()
	cfg.Algorithms = algs
	cfg.WatchdogNs = 10_000_000_000 // degraded mode without message drops
	sel, err := collsel.Select(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Degraded {
		t.Fatal("selection not flagged degraded despite a failing algorithm")
	}
	if len(sel.Excluded) != 1 || sel.Excluded[0].Name != "always_broken" {
		t.Fatalf("excluded %v, want exactly always_broken", sel.Excluded)
	}
	if sel.FaultCounts["always_broken"] == 0 {
		t.Error("no fault count recorded for the failing algorithm")
	}
	if sel.Recommended.Name == "always_broken" {
		t.Error("recommended the failing algorithm")
	}
	for _, al := range sel.Matrix.Algorithms {
		if al.Name == "always_broken" {
			t.Error("failing algorithm still present in the pruned matrix")
		}
	}
	// The survivors' ranking matches a clean selection over the same set.
	clean, err := collsel.Select(fastSelect())
	if err != nil {
		t.Fatal(err)
	}
	if sel.Recommended.Name != clean.Recommended.Name {
		t.Errorf("degraded recommendation %s, clean %s", sel.Recommended.Name, clean.Recommended.Name)
	}
}

func TestEveryAlgorithmFailingIsAnError(t *testing.T) {
	broken := collsel.Algorithm{
		Coll: collsel.Allreduce,
		Name: "always_broken",
		Run: func(a *collsel.Args) ([]float64, error) {
			return nil, fmt.Errorf("injected permanent failure")
		},
	}
	cfg := fastSelect()
	cfg.Collective = collsel.Allreduce
	cfg.Algorithms = []collsel.Algorithm{broken}
	cfg.WatchdogNs = 10_000_000_000
	if _, err := collsel.Select(cfg); err == nil {
		t.Fatal("expected an error when every algorithm fails")
	}
}
